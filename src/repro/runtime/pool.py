"""Multi-tenant device pool: independent launches sharded across
persistent worker processes.

Each worker process hosts one :class:`~repro.api.device.Device`
(kernels registered at startup, optionally compiled ahead with
``Device.warm()`` — with ``REPRO_CACHE=1`` the persistent translation
cache makes workers warm-startable across pool restarts). Tenants are
pinned to a worker (their allocations live in that worker's arena);
launches of the tenants sharing a worker are scheduled by weighted
fair queueing, and per-tenant quotas bound how much work any one
tenant can have in flight.

Fault isolation builds on the containment runtime: a contained fault
inside a worker (KernelTrap / LaunchTimeout / BarrierDeadlock) is
reported back with its structured payload and partial statistics, the
worker device is recovered immediately (arena-neutral
``Device.reset()``), and the *tenant* — not the worker — becomes
sticky-failed: its queued launches fail fast until
``TenantSession.reset()``, while other tenants on the same worker
keep launching.

Worker processes default to the ``spawn`` start method: it is safe in
threaded parents (the pool runs dispatcher threads) and identical
across platforms. ``REPRO_POOL_START=fork`` opts into faster startup
where safe.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.stream import LaunchFuture
from ..errors import (
    BarrierDeadlock,
    KernelTrap,
    LaunchError,
    LaunchTimeout,
    QuotaExceeded,
)
from .statistics import LaunchStatistics

#: Most trap report strings retained per tenant.
_TRAP_REPORT_LIMIT = 8

_FAULT_TYPES = (KernelTrap, LaunchTimeout, BarrierDeadlock)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _describe_error(error: BaseException) -> dict:
    """Serialize an exception into a structured, picklable payload.

    Exceptions themselves don't round-trip a pipe reliably (custom
    ``__init__`` signatures break unpickling), so the worker ships the
    pieces — type name, message, TrapInfo, partial statistics,
    rendered report — and the parent rebuilds an equivalent error."""
    payload = {
        "type": type(error).__name__,
        "message": str(error),
        "kernel": getattr(error, "kernel", None),
    }
    for attribute in ("info", "statistics"):
        try:
            value = getattr(error, attribute, None)
        except Exception:  # pragma: no cover - defensive
            value = None
        payload[attribute] = value
    try:
        from .traps import format_timeout, format_trap

        if isinstance(error, KernelTrap):
            payload["report"] = format_trap(error)
        elif isinstance(error, LaunchTimeout):
            payload["report"] = format_timeout(error)
    except Exception:  # pragma: no cover - report rendering best-effort
        pass
    return payload


def _rebuild_error(payload: dict) -> BaseException:
    """Reconstruct the worker-side exception class from its payload.
    The structured extras ride along: ``info`` (KernelTrap),
    ``statistics`` (partial LaunchStatistics), and ``remote_report``
    (the pre-rendered format_trap/format_timeout text)."""
    kind = payload.get("type", "LaunchError")
    message = payload.get("message", "")
    if kind == "KernelTrap":
        error: BaseException = KernelTrap(message, info=payload.get("info"))
    elif kind == "LaunchTimeout":
        error = LaunchTimeout(message, kernel=payload.get("kernel"))
    elif kind == "BarrierDeadlock":
        error = BarrierDeadlock(message)
    elif kind == "QuotaExceeded":
        error = QuotaExceeded(message)
    elif kind == "LaunchError":
        error = LaunchError(message)
    else:
        error = LaunchError(f"{kind}: {message}")
    error.statistics = payload.get("statistics")
    error.remote_report = payload.get("report")
    return error


def _pool_worker_main(
    conn,
    config,
    machine,
    memory_size: int,
    modules: Sequence[str],
    warm: bool,
) -> None:
    """Entry point of one worker process: builds a Device, registers
    the pool's modules, then serves (request_id, op, payload) RPCs
    until shutdown or EOF."""
    from ..api.device import Device
    from ..testing.fault_injection import FaultInjector

    device = Device(config=config, machine=machine, memory_size=memory_size)
    for source in modules:
        device.register_module(source)
    if warm:
        device.warm()

    allocations: Dict[int, object] = {}
    next_handle = 1
    injector: Optional[FaultInjector] = None

    def resolve_args(raw_args):
        resolved = []
        for value in raw_args:
            if isinstance(value, dict) and "__handle__" in value:
                handle = value["__handle__"]
                if handle not in allocations:
                    raise LaunchError(
                        f"unknown allocation handle {handle}"
                    )
                resolved.append(allocations[handle])
            else:
                resolved.append(value)
        return resolved

    def handle_request(op: str, payload: dict):
        nonlocal next_handle, injector
        if op == "register":
            module = device.register_module(payload["source"])
            return sorted(module.kernels)
        if op == "malloc":
            allocation = device.malloc(
                int(payload["size"]), label=payload.get("label")
            )
            handle = next_handle
            next_handle += 1
            allocations[handle] = allocation
            return {
                "handle": handle,
                "address": allocation.address,
                "size": allocation.size,
            }
        if op == "upload":
            array = np.asarray(payload["data"])
            allocation = device.upload(array, label=payload.get("label"))
            handle = next_handle
            next_handle += 1
            allocations[handle] = allocation
            return {
                "handle": handle,
                "address": allocation.address,
                "size": allocation.size,
            }
        if op == "write":
            allocations[payload["handle"]].write(
                np.asarray(payload["data"])
            )
            return None
        if op == "read":
            allocation = allocations[payload["handle"]]
            return allocation.read(
                np.dtype(payload["dtype"]), int(payload["count"])
            )
        if op == "free":
            device.free(allocations.pop(payload["handle"]))
            return None
        if op == "launch":
            try:
                return device.launch(
                    payload["kernel"],
                    tuple(payload["grid"]),
                    tuple(payload["block"]),
                    resolve_args(payload["args"]),
                )
            except _FAULT_TYPES:
                # Recover the shared device immediately: the fault is
                # the *tenant's*, tracked sticky in the parent; other
                # tenants on this worker must keep launching.
                device.reset()
                raise
        if op == "warm":
            return device.warm()
        if op == "reset":
            device.reset()
            return None
        if op == "arm_fault":
            if injector is None:
                injector = FaultInjector(
                    device, seed=payload.get("seed")
                )
            options = dict(payload.get("options", {}))
            injector.arm(
                payload["site"],
                probability=payload.get("probability", 1.0),
                **options,
            )
            return None
        if op == "disarm_faults":
            if injector is not None:
                injector.restore()
                injector = None
            return None
        if op == "statistics":
            return device.statistics_report()
        raise LaunchError(f"unknown pool worker op {op!r}")

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        request_id, op, payload = request
        if op == "shutdown":
            conn.send((request_id, True, None))
            break
        try:
            result = handle_request(op, payload)
        except Exception as error:
            described = _describe_error(error)
            try:
                conn.send((request_id, False, described))
            except Exception:
                described.pop("info", None)
                described.pop("statistics", None)
                conn.send((request_id, False, described))
        else:
            conn.send((request_id, True, result))
    conn.close()


# ---------------------------------------------------------------------------
# parent-side worker handle
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side handle of one worker process: a pipe, a lock
    serializing RPCs (the worker handles one request at a time), and
    liveness checks so a dead worker raises instead of hanging."""

    def __init__(
        self, index, context, config, machine, memory_size, modules, warm
    ):
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_pool_worker_main,
            args=(
                child_conn, config, machine, memory_size,
                list(modules), warm,
            ),
            name=f"repro-pool-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.lock = threading.Lock()
        self._request_ids = 0

    def call(self, op: str, timeout: Optional[float] = None, **payload):
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.lock:
            self._request_ids += 1
            request_id = self._request_ids
            try:
                self.conn.send((request_id, op, payload))
            except (OSError, ValueError) as error:
                raise LaunchError(
                    f"pool worker {self.index} is unreachable: {error}"
                ) from error
            while not self.conn.poll(0.1):
                if not self.process.is_alive():
                    raise LaunchError(
                        f"pool worker {self.index} died (exit code "
                        f"{self.process.exitcode}) during {op!r}"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise LaunchError(
                        f"pool worker {self.index} timed out after "
                        f"{timeout}s during {op!r}"
                    )
            try:
                reply_id, ok, result = self.conn.recv()
            except (EOFError, OSError) as error:
                raise LaunchError(
                    f"pool worker {self.index} died during {op!r}"
                ) from error
        if ok:
            return result
        raise _rebuild_error(result)

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.call("shutdown", timeout=timeout)
        except LaunchError:
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        self.process.close()


# ---------------------------------------------------------------------------
# weighted fair queueing
# ---------------------------------------------------------------------------


class WeightedFairQueue:
    """Stride scheduler over per-tenant FIFO queues.

    Every tenant carries a virtual *pass*; :meth:`pop` serves the
    backlogged tenant with the smallest pass (ties broken by name for
    determinism) and advances it by ``1 / weight`` — so over any busy
    interval tenants receive service proportional to their weights. A
    tenant going idle re-enters at the current virtual clock (no
    banked credit, no starvation)."""

    def __init__(self):
        self._queues: Dict[str, deque] = {}
        self._weights: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}
        self._clock = 0.0

    def add(self, tenant: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if tenant in self._queues:
            raise ValueError(f"tenant {tenant!r} already queued")
        self._queues[tenant] = deque()
        self._weights[tenant] = float(weight)
        self._passes[tenant] = self._clock

    def push(self, tenant: str, item) -> None:
        backlog = self._queues[tenant]
        if not backlog:
            self._passes[tenant] = max(self._passes[tenant], self._clock)
        backlog.append(item)

    def pop(self) -> Optional[Tuple[str, object]]:
        candidates = [
            (virtual_pass, tenant)
            for tenant, virtual_pass in self._passes.items()
            if self._queues[tenant]
        ]
        if not candidates:
            return None
        virtual_pass, tenant = min(candidates)
        self._clock = virtual_pass
        self._passes[tenant] = virtual_pass + 1.0 / self._weights[tenant]
        return tenant, self._queues[tenant].popleft()

    def __len__(self) -> int:
        return sum(len(backlog) for backlog in self._queues.values())


# ---------------------------------------------------------------------------
# tenants
# ---------------------------------------------------------------------------


@dataclass
class TenantStatistics:
    """Per-tenant serving counters + merged launch statistics."""

    tenant: str
    worker: int
    weight: float
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    traps: int = 0
    timeouts: int = 0
    rejected: int = 0
    host_seconds: float = 0.0
    #: Merged LaunchStatistics over completed launches and the partial
    #: statistics riding on contained faults.
    statistics: LaunchStatistics = field(default_factory=LaunchStatistics)
    #: Most recent rendered trap/timeout reports (bounded).
    trap_reports: List[str] = field(default_factory=list)

    def record_trap_report(self, report: Optional[str]) -> None:
        if not report:
            return
        self.trap_reports.append(report)
        del self.trap_reports[:-_TRAP_REPORT_LIMIT]


@dataclass(frozen=True)
class RemoteAllocation:
    """A tenant's handle to a buffer living in its worker's arena."""

    tenant: str
    handle: int
    address: int
    size: int

    def __int__(self):
        return self.address


class _LaunchJob:
    __slots__ = ("future", "kernel", "grid", "block", "args", "submitted_at")

    def __init__(self, future, kernel, grid, block, args):
        self.future = future
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.args = args
        self.submitted_at = time.perf_counter()


class TenantSession:
    """One tenant's connection to the pool: pinned to a worker, with
    its own quotas, weight, sticky-error state, and statistics."""

    def __init__(
        self,
        pool: "DevicePool",
        tenant: str,
        worker: _Worker,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        max_launches: Optional[int] = None,
    ):
        self.pool = pool
        self.tenant = tenant
        self.weight = weight
        self.max_pending = max_pending
        self.max_launches = max_launches
        self._worker = worker
        self.stats = TenantStatistics(
            tenant=tenant, worker=worker.index, weight=weight
        )
        #: Sticky per-tenant fault: set when one of this tenant's
        #: launches traps; cleared by :meth:`reset`.
        self.last_error: Optional[BaseException] = None
        self._pending = 0
        self._condition = threading.Condition()

    @property
    def worker_index(self) -> int:
        return self._worker.index

    # -- memory & modules -------------------------------------------------

    def register_module(self, source: str) -> List[str]:
        """Register a tenant-private module on this tenant's worker
        (pool.register_module broadcasts to every worker instead)."""
        return self._worker.call("register", source=source)

    def malloc(
        self, size: int, label: Optional[str] = None
    ) -> RemoteAllocation:
        reply = self._worker.call("malloc", size=size, label=label)
        return RemoteAllocation(self.tenant, **reply)

    def upload(
        self, array: np.ndarray, label: Optional[str] = None
    ) -> RemoteAllocation:
        reply = self._worker.call(
            "upload", data=np.asarray(array), label=label
        )
        return RemoteAllocation(self.tenant, **reply)

    def write(self, allocation: RemoteAllocation, array) -> None:
        self._worker.call(
            "write", handle=allocation.handle, data=np.asarray(array)
        )

    def read(
        self, allocation: RemoteAllocation, dtype, count: int
    ) -> np.ndarray:
        return self._worker.call(
            "read",
            handle=allocation.handle,
            dtype=np.dtype(dtype).str,
            count=count,
        )

    def free(self, allocation: RemoteAllocation) -> None:
        self._worker.call("free", handle=allocation.handle)

    # -- launches ----------------------------------------------------------

    def launch_async(
        self, kernel: str, grid, block, args: Sequence[object] = ()
    ) -> LaunchFuture:
        """Queue one launch through the pool's fair scheduler; returns
        a LaunchFuture with the same delivery semantics as
        ``Device.launch_async``."""
        from ..api.device import _normalize_dim

        grid = _normalize_dim(grid, which="grid")
        block = _normalize_dim(block, which="block")
        if self.last_error is not None:
            raise LaunchError(
                f"tenant {self.tenant!r} is in a failed state "
                f"({type(self.last_error).__name__}: {self.last_error}); "
                f"call TenantSession.reset() to clear it"
            )
        with self._condition:
            if (
                self.max_launches is not None
                and self.stats.submitted >= self.max_launches
            ):
                self.stats.rejected += 1
                raise QuotaExceeded(
                    f"tenant {self.tenant!r} exhausted its lifetime "
                    f"launch quota ({self.max_launches})"
                )
            if (
                self.max_pending is not None
                and self._pending >= self.max_pending
            ):
                self.stats.rejected += 1
                raise QuotaExceeded(
                    f"tenant {self.tenant!r} has {self._pending} "
                    f"launches outstanding (quota {self.max_pending}); "
                    f"collect results before submitting more"
                )
            self.stats.submitted += 1
            self._pending += 1
        future = LaunchFuture(kernel)
        job = _LaunchJob(
            future, kernel, grid, block, self._serialize_args(args)
        )
        self.pool._submit(self, job)
        return future

    def launch(self, kernel: str, grid, block, args: Sequence[object] = ()):
        """Synchronous launch: submit + wait."""
        return self.launch_async(kernel, grid, block, args).result()

    def _serialize_args(self, args: Sequence[object]) -> List[object]:
        serialized: List[object] = []
        for value in args:
            if isinstance(value, RemoteAllocation):
                if value.tenant != self.tenant:
                    raise LaunchError(
                        f"allocation belongs to tenant "
                        f"{value.tenant!r}, not {self.tenant!r}"
                    )
                serialized.append({"__handle__": value.handle})
            else:
                serialized.append(value)
        return serialized

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted launch has completed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise LaunchError(
                            f"tenant {self.tenant!r} still has "
                            f"{self._pending} launches outstanding "
                            f"after {timeout}s"
                        )
                self._condition.wait(remaining)

    def reset(self) -> None:
        """Clear this tenant's sticky fault (the worker device was
        already recovered when the fault was contained)."""
        self._worker.call("reset")
        self.last_error = None

    # -- fault injection & introspection ----------------------------------

    def inject_fault(
        self,
        site: str,
        probability: float = 1.0,
        seed: Optional[int] = None,
        **options,
    ) -> None:
        """Arm a :class:`repro.testing.FaultInjector` site on this
        tenant's *worker device* (device-scoped, like real hardware
        faults — tenants sharing the worker may observe it too).
        RemoteAllocation options are translated to worker handles."""
        translated = {}
        for key, value in options.items():
            if isinstance(value, RemoteAllocation):
                translated[key] = (value.address, value.size)
            else:
                translated[key] = value
        self._worker.call(
            "arm_fault",
            site=site,
            probability=probability,
            seed=seed,
            options=translated,
        )

    def disarm_faults(self) -> None:
        self._worker.call("disarm_faults")

    def statistics(self) -> TenantStatistics:
        return self.stats

    # -- internal accounting (called by the pool dispatcher) ---------------

    def _complete(self, job: _LaunchJob, result, error) -> None:
        elapsed = time.perf_counter() - job.submitted_at
        with self._condition:
            self.stats.host_seconds += elapsed
            if error is None:
                self.stats.completed += 1
                self.stats.statistics.merge(result.statistics)
            else:
                self.stats.failed += 1
                if isinstance(error, KernelTrap):
                    self.stats.traps += 1
                elif isinstance(error, LaunchTimeout):
                    self.stats.timeouts += 1
                partial = getattr(error, "statistics", None)
                if partial is not None:
                    self.stats.statistics.merge(partial)
                self.stats.record_trap_report(
                    getattr(error, "remote_report", None)
                )
                if isinstance(error, _FAULT_TYPES):
                    self.last_error = error
            self._pending -= 1
            self._condition.notify_all()


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


def _default_start_method() -> str:
    override = os.environ.get("REPRO_POOL_START", "").strip()
    if override:
        return override
    return "spawn"


class DevicePool:
    """Shards independent kernel launches across persistent worker
    processes, with per-tenant quotas, weighted fair queueing, and
    per-tenant statistics/trap reporting.

    ::

        pool = DevicePool(workers=4, modules=[PTX], warm=True)
        session = pool.session("alice", weight=2.0, max_pending=8)
        buffer = session.upload(host_array)
        future = session.launch_async("vecAdd", grid=8, block=64,
                                      args=[buffer, buffer, out, n])
        result = future.result()
        pool.shutdown()
    """

    def __init__(
        self,
        workers: int = 2,
        config=None,
        machine=None,
        memory_size: int = 1 << 26,
        modules: Sequence[str] = (),
        warm: bool = False,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"invalid worker count {workers}")
        context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._workers = [
            _Worker(
                index, context, config, machine, memory_size,
                modules, warm,
            )
            for index in range(workers)
        ]
        self._sessions: Dict[str, TenantSession] = {}
        self._sessions_lock = threading.Lock()
        self._queues = [WeightedFairQueue() for _ in self._workers]
        self._conditions = [threading.Condition() for _ in self._workers]
        self._closed = False
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(worker,),
                name=f"repro-pool-dispatch-{worker.index}",
                daemon=True,
            )
            for worker in self._workers
        ]
        for dispatcher in self._dispatchers:
            dispatcher.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop dispatchers and terminate the worker processes. Queued
        launches that never ran fail fast through their futures."""
        if self._closed:
            return
        self._closed = True
        for condition in self._conditions:
            with condition:
                condition.notify_all()
        for dispatcher in self._dispatchers:
            dispatcher.join(timeout=10)
        # Fail whatever never got dispatched.
        for queue_, worker in zip(self._queues, self._workers):
            while True:
                entry = queue_.pop()
                if entry is None:
                    break
                tenant, job = entry
                session = self._sessions.get(tenant)
                error = LaunchError("device pool was shut down")
                job.future._fail(error)
                if session is not None:
                    session._complete(job, None, error)
        for worker in self._workers:
            worker.shutdown()

    # -- tenants -----------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._workers)

    def register_module(self, source: str) -> List[str]:
        """Register a module on every worker (pool-wide kernels)."""
        kernels: List[str] = []
        for worker in self._workers:
            kernels = worker.call("register", source=source)
        return kernels

    def ready(self, timeout: Optional[float] = None) -> None:
        """Block until every worker process has finished starting up
        (device built, modules registered, warm() done). Purely a
        round-trip; new tenants can launch immediately afterwards
        without paying worker-start latency."""
        for worker in self._workers:
            worker.call("statistics", timeout=timeout)

    def session(
        self,
        tenant: str,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        max_launches: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> TenantSession:
        """Create (or fetch) the tenant's session. New tenants are
        pinned to the least-populated worker unless ``worker`` pins
        one explicitly."""
        with self._sessions_lock:
            existing = self._sessions.get(tenant)
            if existing is not None:
                return existing
            if worker is None:
                population = {index: 0 for index in range(self.workers)}
                for session in self._sessions.values():
                    population[session.worker_index] += 1
                worker = min(
                    population, key=lambda index: (population[index], index)
                )
            if not 0 <= worker < self.workers:
                raise ValueError(
                    f"worker {worker} out of range (have {self.workers})"
                )
            session = TenantSession(
                self,
                tenant,
                self._workers[worker],
                weight=weight,
                max_pending=max_pending,
                max_launches=max_launches,
            )
            self._sessions[tenant] = session
            with self._conditions[worker]:
                self._queues[worker].add(tenant, weight)
            return session

    def sessions(self) -> List[TenantSession]:
        with self._sessions_lock:
            return list(self._sessions.values())

    # -- scheduling --------------------------------------------------------

    def _submit(self, session: TenantSession, job: _LaunchJob) -> None:
        if self._closed:
            raise LaunchError("device pool is shut down")
        index = session.worker_index
        with self._conditions[index]:
            self._queues[index].push(session.tenant, job)
            self._conditions[index].notify()

    def _dispatch_loop(self, worker: _Worker) -> None:
        queue_ = self._queues[worker.index]
        condition = self._conditions[worker.index]
        while True:
            with condition:
                entry = queue_.pop()
                while entry is None:
                    if self._closed:
                        return
                    condition.wait(0.5)
                    entry = queue_.pop()
            tenant, job = entry
            session = self._sessions[tenant]
            if session.last_error is not None:
                # Sticky tenant fault: fail queued launches fast, like
                # Device.launch on a faulted device.
                error = LaunchError(
                    f"tenant {tenant!r} is in a failed state "
                    f"({type(session.last_error).__name__}); call "
                    f"TenantSession.reset() to clear it"
                )
                job.future._fail(error)
                session._complete(job, None, error)
                continue
            try:
                result = worker.call(
                    "launch",
                    kernel=job.kernel,
                    grid=job.grid,
                    block=job.block,
                    args=job.args,
                )
            except Exception as error:
                job.future._fail(error)
                session._complete(job, None, error)
            else:
                job.future._resolve(result)
                session._complete(job, result, None)

    def synchronize(self) -> None:
        """Block until every tenant's submitted launches completed."""
        for session in self.sessions():
            session.synchronize()

    # -- reporting ---------------------------------------------------------

    def statistics(self) -> Dict[str, TenantStatistics]:
        return {
            session.tenant: session.stats for session in self.sessions()
        }

    def aggregate_statistics(self) -> LaunchStatistics:
        """Pool-level merged LaunchStatistics over every tenant."""
        merged = LaunchStatistics()
        for session in self.sessions():
            merged.merge(session.stats.statistics)
        return merged

    def worker_reports(self) -> List[str]:
        """Each worker device's ``statistics_report()`` line."""
        return [worker.call("statistics") for worker in self._workers]

    def report(self) -> str:
        """Pool-level serving report: per-tenant counters + aggregate."""
        sessions = self.sessions()
        lines = [
            f"== device pool: {self.workers} workers, "
            f"{len(sessions)} tenants =="
        ]
        header = (
            f"{'tenant':<16} {'worker':>6} {'weight':>6} {'done':>6} "
            f"{'fail':>5} {'traps':>5} {'rejected':>8} {'host s':>8}"
        )
        lines.append(header)
        for session in sorted(sessions, key=lambda s: s.tenant):
            stats = session.stats
            lines.append(
                f"{stats.tenant:<16} {stats.worker:>6} "
                f"{stats.weight:>6.1f} {stats.completed:>6} "
                f"{stats.failed:>5} {stats.traps:>5} "
                f"{stats.rejected:>8} {stats.host_seconds:>8.2f}"
            )
        aggregate = self.aggregate_statistics()
        lines.append(
            f"aggregate: launches="
            f"{sum(s.stats.completed for s in sessions)} "
            f"failures={sum(s.stats.failed for s in sessions)} "
            f"traps={sum(s.stats.traps for s in sessions)} "
            f"instructions={aggregate.instructions} "
            f"modeled cycles={aggregate.total_cycles}"
        )
        return "\n".join(lines)
