"""Multi-tenant device pool: independent launches sharded across
persistent worker processes, with process-level self-healing.

Each worker process hosts one :class:`~repro.api.device.Device`
(kernels registered at startup, optionally compiled ahead with
``Device.warm()`` — with ``REPRO_CACHE=1`` the persistent translation
cache makes workers warm-startable across pool restarts). Tenants are
pinned to a worker (their allocations live in that worker's arena);
launches of the tenants sharing a worker are scheduled by weighted
fair queueing, and per-tenant quotas bound how much work any one
tenant can have in flight.

Two failure domains are handled separately:

*Launch* faults (KernelTrap / LaunchTimeout / BarrierDeadlock) are the
tenant's: the fault is reported back with its structured payload and
partial statistics, the worker device is recovered immediately
(arena-neutral ``Device.reset()``), and the *tenant* becomes
sticky-failed until ``TenantSession.reset()`` while other tenants on
the same worker keep launching.

*Process* faults are infrastructure's: a supervisor thread detects
crashed (exit code), hung (stuck call / missed heartbeat), and
pipe-dropped workers, terminates them, and respawns them warm — the
module-registration journal is replayed from the parent, and with
``REPRO_CACHE=1`` translation restarts from the persistent cache.
Every in-flight request on the lost worker resolves to a structured
:class:`~repro.errors.DeviceLost` carrying the worker index, the loss
cause, and the *device epoch* that died; the respawned worker runs at
the next epoch, so :class:`RemoteAllocation` handles stamped with the
old epoch fail fast instead of aliasing a stranger's memory.
Queued-but-never-dispatched launches are re-dispatched automatically
under an opt-in per-session :class:`RetryPolicy` (exponential backoff
with jitter); a launch that was already delivered to the dead worker
is *never* silently re-run — it may have mutated guest memory. A
per-worker circuit breaker opens after repeated consecutive
infrastructure failures, suspending respawns until a cooldown
half-open probe succeeds.

Worker processes default to the ``spawn`` start method: it is safe in
threaded parents (the pool runs dispatcher + supervisor threads) and
identical across platforms. ``REPRO_POOL_START=fork`` opts into
faster startup where safe.

*Durability* (opt-in per session, ``durability="journal"`` or
``"checkpoint"``) makes DeviceLost *recoverable* instead of merely
detectable: the session journals every state-mutating operation
(malloc/upload/write/free and every launch known to have executed),
and — in checkpoint mode — periodically snapshots live allocation
contents through :class:`~repro.runtime.state_store.StateStore`,
truncating the journal. After a respawn the supervisor restores the
tenant onto the fresh epoch: newest valid checkpoint + journal-tail
replay (deterministic execution makes the replay bit-identical), with
tenant-local allocation handles re-mapped onto the new worker handles
so callers' existing :class:`RemoteAllocation` handles keep working.
Launches caught by the loss — even delivered ones, which the restore
rewinds past — are parked and transparently re-dispatched, surfacing
``restored=True`` on their results instead of DeviceLost.
``durability="none"`` (the default) keeps the original epoch-stamped
fail-fast semantics and an unchanged hot path.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.stream import LaunchFuture
from ..errors import (
    BarrierDeadlock,
    DeadlineExpired,
    DeviceLost,
    KernelTrap,
    LaunchError,
    LaunchTimeout,
    QuotaExceeded,
    ServiceUnavailable,
)
from .state_store import StateStore
from .statistics import LaunchStatistics, WorkerHealth

#: Most trap report strings retained per tenant.
_TRAP_REPORT_LIMIT = 8

_FAULT_TYPES = (KernelTrap, LaunchTimeout, BarrierDeadlock)

#: Per-session durability modes (see TenantSession).
_DURABILITY_MODES = ("none", "journal", "checkpoint")

#: Times a parked launch may ride through a restore before its
#: DeviceLost is surfaced (bounds kill-loop livelock).
_RESTORE_DISPATCH_LIMIT = 3


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _describe_error(error: BaseException) -> dict:
    """Serialize an exception into a structured, picklable payload.

    Exceptions themselves don't round-trip a pipe reliably (custom
    ``__init__`` signatures break unpickling), so the worker ships the
    pieces — type name, message, TrapInfo, partial statistics,
    rendered report — and the parent rebuilds an equivalent error."""
    payload = {
        "type": type(error).__name__,
        "message": str(error),
        "kernel": getattr(error, "kernel", None),
    }
    for attribute in ("info", "statistics"):
        try:
            value = getattr(error, attribute, None)
        except Exception:  # pragma: no cover - defensive
            value = None
        payload[attribute] = value
    try:
        from .traps import format_timeout, format_trap

        if isinstance(error, KernelTrap):
            payload["report"] = format_trap(error)
        elif isinstance(error, LaunchTimeout):
            payload["report"] = format_timeout(error)
    except Exception:  # pragma: no cover - report rendering best-effort
        pass
    return payload


def _rebuild_error(payload: dict) -> BaseException:
    """Reconstruct the worker-side exception class from its payload.
    The structured extras ride along: ``info`` (KernelTrap),
    ``statistics`` (partial LaunchStatistics), and ``remote_report``
    (the pre-rendered format_trap/format_timeout text)."""
    kind = payload.get("type", "LaunchError")
    message = payload.get("message", "")
    if kind == "KernelTrap":
        error: BaseException = KernelTrap(message, info=payload.get("info"))
    elif kind == "LaunchTimeout":
        error = LaunchTimeout(message, kernel=payload.get("kernel"))
    elif kind == "BarrierDeadlock":
        error = BarrierDeadlock(message)
    elif kind == "QuotaExceeded":
        error = QuotaExceeded(message)
    elif kind == "LaunchError":
        error = LaunchError(message)
    else:
        error = LaunchError(f"{kind}: {message}")
    error.statistics = payload.get("statistics")
    error.remote_report = payload.get("report")
    return error


def _pool_worker_main(
    conn,
    config,
    machine,
    memory_size: int,
    modules: Sequence[str],
    warm: bool,
) -> None:
    """Entry point of one worker process: builds a Device, registers
    the journaled modules, then serves (request_id, op, payload) RPCs
    until shutdown or EOF. ``modules`` is the parent's full
    module-registration journal, so a respawned worker comes back with
    every module its predecessor knew."""
    from ..api.device import Device
    from ..testing.fault_injection import FaultInjector

    device = Device(config=config, machine=machine, memory_size=memory_size)
    for source in modules:
        device.register_module(source)
    if warm:
        device.warm()

    allocations: Dict[int, object] = {}
    next_handle = 1
    injector: Optional[FaultInjector] = None

    def resolve_args(raw_args):
        resolved = []
        for value in raw_args:
            if isinstance(value, dict) and "__handle__" in value:
                handle = value["__handle__"]
                if handle not in allocations:
                    raise LaunchError(
                        f"unknown allocation handle {handle}"
                    )
                resolved.append(allocations[handle])
            else:
                resolved.append(value)
        return resolved

    def handle_request(op: str, payload: dict):
        nonlocal next_handle, injector
        if op == "register":
            module = device.register_module(payload["source"])
            return sorted(module.kernels)
        if op == "malloc":
            allocation = device.malloc(
                int(payload["size"]), label=payload.get("label")
            )
            handle = next_handle
            next_handle += 1
            allocations[handle] = allocation
            return {
                "handle": handle,
                "address": allocation.address,
                "size": allocation.size,
            }
        if op == "upload":
            array = np.asarray(payload["data"])
            allocation = device.upload(array, label=payload.get("label"))
            handle = next_handle
            next_handle += 1
            allocations[handle] = allocation
            return {
                "handle": handle,
                "address": allocation.address,
                "size": allocation.size,
            }
        if op == "write":
            allocations[payload["handle"]].write(
                np.asarray(payload["data"])
            )
            return None
        if op == "read":
            allocation = allocations[payload["handle"]]
            return allocation.read(
                np.dtype(payload["dtype"]), int(payload["count"])
            )
        if op == "free":
            device.free(allocations.pop(payload["handle"]))
            return None
        if op == "launch":
            try:
                return device.launch(
                    payload["kernel"],
                    tuple(payload["grid"]),
                    tuple(payload["block"]),
                    resolve_args(payload["args"]),
                )
            except _FAULT_TYPES:
                # Recover the shared device immediately: the fault is
                # the *tenant's*, tracked sticky in the parent; other
                # tenants on this worker must keep launching.
                device.reset()
                raise
        if op == "warm":
            return device.warm()
        if op == "reset":
            device.reset()
            return None
        if op == "ping":
            # Supervision heartbeat: a pure round-trip proving the
            # worker loop is serving requests.
            return {"pid": os.getpid()}
        if op == "chaos_hang":
            # Testing hook (FaultInjector hang_worker): wedge the
            # worker loop so the parent's stuck-call supervision
            # fires. SIGTERM still interrupts the sleep.
            time.sleep(float(payload.get("duration", 0.5)))
            return None
        if op == "chaos_ignore_term":
            # Testing hook: survive terminate() so the parent's
            # terminate -> kill shutdown escalation is exercised.
            import signal

            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            return {"pid": os.getpid()}
        if op == "arm_fault":
            if injector is None:
                injector = FaultInjector(
                    device, seed=payload.get("seed")
                )
            options = dict(payload.get("options", {}))
            injector.arm(
                payload["site"],
                probability=payload.get("probability", 1.0),
                **options,
            )
            return None
        if op == "disarm_faults":
            if injector is not None:
                injector.restore()
                injector = None
            return None
        if op == "statistics":
            return device.statistics_report()
        raise LaunchError(f"unknown pool worker op {op!r}")

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        request_id, op, payload = request
        if op == "shutdown":
            conn.send((request_id, True, None))
            break
        try:
            result = handle_request(op, payload)
        except Exception as error:
            described = _describe_error(error)
            try:
                conn.send((request_id, False, described))
            except Exception:
                described.pop("info", None)
                described.pop("statistics", None)
                conn.send((request_id, False, described))
        else:
            conn.send((request_id, True, result))
    conn.close()


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Per-worker breaker over consecutive *infrastructure* failures
    (crash, hang, dropped pipe, failed respawn — never tenant traps).

    ``closed`` is healthy operation. Each loss records a failure; at
    ``threshold`` consecutive failures the breaker *opens*: respawns
    are suspended and dispatches to the worker fail fast. After
    ``cooldown`` seconds the breaker goes *half-open*: exactly one
    respawn+heartbeat probe is allowed — success closes the breaker
    (and clears the count), failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 2.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.state = "closed"
        self._opened_at = 0.0

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = "open"
            self._opened_at = time.monotonic()

    def record_success(self) -> None:
        if self.failures or self.state != "closed":
            self.failures = 0
            self.state = "closed"

    def allow_probe(self) -> bool:
        """True when a respawn attempt is permitted right now."""
        if self.state == "closed":
            return True
        if self.state == "half-open":
            # The previous half-open probe is still being judged (its
            # failure re-opens, its success closes).
            return True
        if time.monotonic() - self._opened_at >= self.cooldown:
            self.state = "half-open"
            return True
        return False


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in per-session automatic re-dispatch of launches that were
    *queued but never delivered* when their worker was lost.

    A launch that already reached the dead worker may have mutated
    guest memory and is never retried — it resolves to
    :class:`~repro.errors.DeviceLost` (``delivered=True``). Launches
    the pool still held (or whose dispatch failed before the request
    left the parent) are safe: they are re-queued after an exponential
    backoff ``base_delay * multiplier**(attempt-1)``, stretched by up
    to ``jitter`` (a fraction, drawn from the pool's seeded RNG), for
    at most ``max_attempts`` total attempts and, when ``deadline`` is
    set, only while total elapsed time since submission stays under
    it."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.multiplier < 1 or self.jitter < 0:
            raise ValueError(
                "base_delay must be >= 0, multiplier >= 1, jitter >= 0"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        delay = self.base_delay * self.multiplier ** max(0, attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


# ---------------------------------------------------------------------------
# parent-side worker handle
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side handle of one worker process slot.

    The slot outlives any single worker *process*: when the process is
    lost the supervisor respawns a new one into the same slot, bumping
    the device ``epoch``. RPCs are multiplexed over the pipe — the
    lock covers only send/bookkeeping, never the reply wait, so a slow
    launch cannot block ``shutdown()`` or another caller, and replies
    are correlated by request id (a stale reply left over from a
    timed-out call is drained and discarded, never mis-attributed)."""

    def __init__(
        self, index, context, config, machine, memory_size, modules, warm
    ):
        self.index = index
        self._context = context
        self._config = config
        self._machine = machine
        self._memory_size = memory_size
        self._warm = warm
        #: Module-registration journal: every *distinct* source ever
        #: registered on this slot (pool-wide and tenant-private),
        #: replayed into a respawned worker so it comes back warm and
        #: complete. Deduplicated — re-registering the same source is
        #: idempotent worker-side, so replay stays O(unique modules)
        #: no matter how many times tenants re-register.
        self.journal: List[str] = []
        self._journaled = set()
        for source in modules:
            if source not in self._journaled:
                self.journal.append(source)
                self._journaled.add(source)
        self.epoch = 0
        self.respawns = 0
        #: Tenant restores completed onto this slot (durability layer)
        #: and the duration of the most recent one.
        self.restores = 0
        self.last_restore_seconds: Optional[float] = None
        self.last_cause: Optional[str] = None
        self.breaker = CircuitBreaker()
        #: Pool callback fired (outside the lock) when the slot is
        #: marked lost — wakes the supervisor immediately.
        self._on_lost: Optional[Callable[["_Worker"], None]] = None
        self.lock = threading.RLock()
        self._reply_ready = threading.Condition(self.lock)
        self._request_ids = 0
        #: request_id -> send time (monotonic) of in-flight RPCs.
        self._pending: Dict[int, float] = {}
        #: request_id -> (ok, result) replies awaiting their caller.
        self._replies: Dict[int, Tuple[bool, object]] = {}
        self._reader_active = False
        self._lost: Optional[DeviceLost] = None
        self._swept: Optional[DeviceLost] = None
        self._needs_reap = False
        self.process = None
        self.conn = None
        self.last_seen = time.monotonic()
        self._spawn()

    # -- chaos hooks (patched by testing.FaultInjector) -------------------

    def _hook_before_send(self, op: str, payload: dict) -> None:
        """No-op seam: FaultInjector's parent-side process chaos sites
        (kill_worker / hang_worker / drop_pipe) patch this."""

    def _hook_after_send(self, op: str, payload: dict) -> None:
        """No-op seam, fired after the request reached the pipe."""

    # -- process lifecycle -------------------------------------------------

    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        self.process = self._context.Process(
            target=_pool_worker_main,
            args=(
                child_conn, self._config, self._machine,
                self._memory_size, list(self.journal), self._warm,
            ),
            name=f"repro-pool-worker-{self.index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.last_seen = time.monotonic()

    @property
    def lost(self) -> bool:
        return self._lost is not None

    @property
    def needs_reap(self) -> bool:
        return self._needs_reap

    def mark_lost(self, cause: str) -> Optional[DeviceLost]:
        """Declare this worker's process lost: every in-flight and
        future RPC on the current epoch raises DeviceLost. Idempotent
        per loss; returns the loss error (or None if already lost)."""
        with self.lock:
            if self._lost is not None:
                return None
            self.last_cause = cause
            self._lost = DeviceLost(
                f"pool worker {self.index} lost at epoch {self.epoch}: "
                f"{cause}",
                worker=self.index,
                cause=cause,
                epoch=self.epoch,
            )
            self._needs_reap = True
            self._reply_ready.notify_all()
            error = self._lost
        on_lost = self._on_lost
        if on_lost is not None:
            on_lost(self)
        return error

    def lost_error(self, op: str, delivered: bool) -> DeviceLost:
        """A fresh DeviceLost for one failed request (the template
        error is shared; the delivered flag is per-request)."""
        base = self._lost
        return DeviceLost(
            f"{base} (during {op!r})",
            worker=self.index,
            cause=base.cause,
            epoch=base.epoch,
            delivered=delivered,
        )

    def reap(self, timeout: float = 5.0) -> None:
        """Tear down the lost process: close the pipe, terminate, and
        escalate to kill() for a process that survives terminate.
        Never raises — teardown during interpreter exit must be
        silent."""
        self._needs_reap = False
        try:
            if self.conn is not None:
                self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        process = self.process
        if process is None:
            return
        try:
            if process.is_alive():
                process.terminate()
                process.join(timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout)
            if not process.is_alive():
                process.close()
        except (ValueError, OSError):  # pragma: no cover - defensive
            # ValueError: close() on a still-running process (it
            # survived even kill; leave the daemon to die with us).
            pass

    def respawn(self) -> None:
        """Start a replacement process in this slot at the next device
        epoch. The caller (supervisor) must have reaped the old
        process first."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pool_worker_main,
            args=(
                child_conn, self._config, self._machine,
                self._memory_size, list(self.journal), self._warm,
            ),
            name=f"repro-pool-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with self.lock:
            self.process = process
            self.conn = parent_conn
            self.epoch += 1
            self.respawns += 1
            # Keep the loss that invalidated the swept pending set:
            # a caller still parked in _await_reply when the slot is
            # recycled finds its request gone and surfaces this error
            # instead of waiting on the fresh epoch forever.
            self._swept = self._lost
            self._pending.clear()
            self._replies.clear()
            self._reader_active = False
            self._lost = None
            self.last_seen = time.monotonic()
            self._reply_ready.notify_all()

    # -- RPC ---------------------------------------------------------------

    def call(self, op: str, timeout: Optional[float] = None, **payload):
        deadline = None if timeout is None else time.monotonic() + timeout
        self._hook_before_send(op, payload)
        with self.lock:
            if self._lost is not None:
                raise self.lost_error(op, delivered=False)
            self._request_ids += 1
            request_id = self._request_ids
            try:
                self.conn.send((request_id, op, payload))
            except (OSError, ValueError) as error:
                self.mark_lost(f"pipe dropped: {error}")
                raise self.lost_error(op, delivered=False) from error
            self._pending[request_id] = time.monotonic()
        self._hook_after_send(op, payload)
        try:
            ok, result = self._await_reply(request_id, op, deadline, timeout)
        finally:
            with self.lock:
                self._pending.pop(request_id, None)
                self._replies.pop(request_id, None)
        if ok:
            self.last_seen = time.monotonic()
            self.breaker.record_success()
            return result
        raise _rebuild_error(result)

    def _await_reply(self, request_id, op, deadline, timeout):
        """Wait (lock-free) for this request's reply. One caller at a
        time volunteers as the pipe reader and distributes replies by
        id; replies whose request is no longer pending — e.g. left in
        the pipe by a call that timed out — are discarded."""
        while True:
            with self._reply_ready:
                while True:
                    reply = self._replies.pop(request_id, None)
                    if reply is not None:
                        return reply
                    if self._lost is not None:
                        raise self.lost_error(op, delivered=True)
                    if request_id not in self._pending:
                        # A respawn recycled the slot (and swept the
                        # pending set) before this caller observed the
                        # loss — surface the loss that invalidated it.
                        base = self._swept
                        raise DeviceLost(
                            f"{base} (during {op!r})"
                            if base is not None
                            else f"pool worker {self.index} request "
                            f"swept during {op!r}",
                            worker=self.index,
                            cause=(
                                base.cause if base is not None
                                else "request swept"
                            ),
                            epoch=(
                                base.epoch if base is not None
                                else max(self.epoch - 1, 0)
                            ),
                            delivered=True,
                        )
                    if (
                        deadline is not None
                        and time.monotonic() > deadline
                    ):
                        # Abandon the request: the reply, if it ever
                        # arrives, is discarded by whoever reads it.
                        self._pending.pop(request_id, None)
                        raise LaunchError(
                            f"pool worker {self.index} timed out after "
                            f"{timeout}s during {op!r}"
                        )
                    if not self._reader_active:
                        self._reader_active = True
                        break
                    self._reply_ready.wait(0.05)
            try:
                self._read_once()
            finally:
                with self._reply_ready:
                    self._reader_active = False
                    self._reply_ready.notify_all()

    def _read_once(self) -> None:
        """One bounded poll of the pipe by the elected reader: deliver
        a correlated reply, drop a stale one, or detect process
        death."""
        conn = self.conn
        process = self.process
        try:
            if conn.poll(0.05):
                reply_id, ok, result = conn.recv()
                with self.lock:
                    if reply_id in self._pending:
                        self._replies[reply_id] = (ok, result)
                        self._reply_ready.notify_all()
                    # else: stale reply from a timed-out call — drop.
                return
        except (EOFError, OSError) as error:
            # Only declare a loss against the pipe we actually read:
            # a reap/respawn may have swapped in a fresh epoch while
            # this poll was blocked on the old (now closed) pipe.
            with self.lock:
                if conn is not self.conn:
                    return
            self.mark_lost(f"pipe closed: {error or type(error).__name__}")
            return
        try:
            alive = process.is_alive()
        except ValueError:
            # reap() closed the handle while this poll was in flight;
            # the respawn (or shutdown) already owns the loss.
            return
        if not alive:
            # The worker may have replied just before exiting: drain
            # what's buffered before declaring the requests lost.
            try:
                while conn.poll(0):
                    reply_id, ok, result = conn.recv()
                    with self.lock:
                        if reply_id in self._pending:
                            self._replies[reply_id] = (ok, result)
                            self._reply_ready.notify_all()
            except (EOFError, OSError):
                pass
            with self.lock:
                if process is not self.process:
                    return
            self.mark_lost(f"died (exit code {process.exitcode})")

    def register(self, source: str) -> List[str]:
        """Register a module and journal it for respawn replay (each
        distinct source is journaled once)."""
        kernels = self.call("register", source=source)
        with self.lock:
            if source not in self._journaled:
                self.journal.append(source)
                self._journaled.add(source)
        return kernels

    # -- supervision probes ------------------------------------------------

    def in_flight(self) -> int:
        with self.lock:
            return len(self._pending)

    def oldest_in_flight_age(self) -> Optional[float]:
        with self.lock:
            if not self._pending:
                return None
            return time.monotonic() - min(self._pending.values())

    def health(self) -> WorkerHealth:
        with self.lock:
            alive = (
                self._lost is None
                and self.process is not None
                and self.process.is_alive()
            )
            return WorkerHealth(
                worker=self.index,
                alive=alive,
                state=self.breaker.state,
                epoch=self.epoch,
                respawns=self.respawns,
                consecutive_failures=self.breaker.failures,
                in_flight=len(self._pending),
                last_cause=self.last_cause,
                restores=self.restores,
                last_restore_seconds=self.last_restore_seconds,
            )

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker: a graceful shutdown RPC when the pipe is
        idle, then loss-marking (which interrupts any caller still
        waiting on a reply) and terminate -> kill escalation."""
        if not self.lost and self.in_flight() == 0:
            try:
                self.call("shutdown", timeout=timeout)
            except LaunchError:
                pass
        self.mark_lost("pool shut down")
        self.reap(timeout)


# ---------------------------------------------------------------------------
# weighted fair queueing
# ---------------------------------------------------------------------------


class WeightedFairQueue:
    """Stride scheduler over per-tenant FIFO queues.

    Every tenant carries a virtual *pass*; :meth:`pop` serves the
    backlogged tenant with the smallest pass (ties broken by name for
    determinism) and advances it by ``1 / weight`` — so over any busy
    interval tenants receive service proportional to their weights. A
    tenant going idle re-enters at the current virtual clock (no
    banked credit, no starvation)."""

    def __init__(self):
        self._queues: Dict[str, deque] = {}
        self._weights: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}
        self._clock = 0.0

    def add(self, tenant: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if tenant in self._queues:
            raise ValueError(f"tenant {tenant!r} already queued")
        self._queues[tenant] = deque()
        self._weights[tenant] = float(weight)
        self._passes[tenant] = self._clock

    def push(self, tenant: str, item) -> None:
        backlog = self._queues[tenant]
        if not backlog:
            self._passes[tenant] = max(self._passes[tenant], self._clock)
        backlog.append(item)

    def pop(self) -> Optional[Tuple[str, object]]:
        candidates = [
            (virtual_pass, tenant)
            for tenant, virtual_pass in self._passes.items()
            if self._queues[tenant]
        ]
        if not candidates:
            return None
        virtual_pass, tenant = min(candidates)
        self._clock = virtual_pass
        self._passes[tenant] = virtual_pass + 1.0 / self._weights[tenant]
        return tenant, self._queues[tenant].popleft()

    def __len__(self) -> int:
        return sum(len(backlog) for backlog in self._queues.values())


# ---------------------------------------------------------------------------
# tenants
# ---------------------------------------------------------------------------


@dataclass
class TenantStatistics:
    """Per-tenant serving counters + merged launch statistics."""

    tenant: str
    worker: int
    weight: float
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    traps: int = 0
    timeouts: int = 0
    rejected: int = 0
    #: Launches that resolved to DeviceLost (their worker's process
    #: crashed, hung, or dropped its pipe while they were in flight).
    device_lost: int = 0
    #: Automatic RetryPolicy re-dispatches of undelivered launches.
    retries: int = 0
    #: Launches that aged past their request deadline in the queue.
    expired: int = 0
    #: Durability layer: completed restores onto a respawned worker,
    #: total time spent restoring, journal ops replayed, and launches
    #: that rode a restore to success instead of DeviceLost.
    restores: int = 0
    restore_seconds: float = 0.0
    replayed_ops: int = 0
    restored_launches: int = 0
    #: Restores abandoned because no valid state survived.
    restore_failures: int = 0
    #: Checkpoints written / bytes snapshotted / attempts that failed
    #: (disk error or worker lost mid-snapshot).
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    checkpoint_errors: int = 0
    host_seconds: float = 0.0
    #: Merged LaunchStatistics over completed launches and the partial
    #: statistics riding on contained faults.
    statistics: LaunchStatistics = field(default_factory=LaunchStatistics)
    #: Most recent rendered trap/timeout reports (bounded).
    trap_reports: List[str] = field(default_factory=list)

    def record_trap_report(self, report: Optional[str]) -> None:
        if not report:
            return
        self.trap_reports.append(report)
        del self.trap_reports[:-_TRAP_REPORT_LIMIT]


@dataclass(frozen=True)
class RemoteAllocation:
    """A tenant's handle to a buffer living in its worker's arena.

    ``epoch`` stamps the device epoch the buffer was allocated at; a
    worker lost and respawned runs at a later epoch, and using a
    stale-epoch allocation fails fast with
    :class:`~repro.errors.DeviceLost` instead of aliasing whatever the
    replacement worker put at the same handle."""

    tenant: str
    handle: int
    address: int
    size: int
    epoch: int = 0

    def __int__(self):
        return self.address


class _LaunchJob:
    __slots__ = (
        "future", "kernel", "grid", "block", "args", "allocations",
        "submitted_at", "deadline", "attempts", "restore_attempts",
        "restored",
    )

    def __init__(
        self, future, kernel, grid, block, args, allocations,
        deadline=None,
    ):
        self.future = future
        self.kernel = kernel
        self.grid = grid
        self.block = block
        self.args = args
        #: RemoteAllocations referenced by args — epoch-checked at
        #: every dispatch attempt.
        self.allocations = allocations
        self.submitted_at = time.monotonic()
        #: Absolute queue deadline (monotonic), or None.
        self.deadline = (
            None if deadline is None else self.submitted_at + deadline
        )
        #: Dispatch attempts so far (RetryPolicy bookkeeping).
        self.attempts = 0
        #: Times this job was parked behind a restore (durability).
        self.restore_attempts = 0
        #: True once the job rode at least one restore; surfaced as
        #: ``result.restored`` so callers can see the launch survived
        #: a worker loss.
        self.restored = False


class TenantSession:
    """One tenant's connection to the pool: pinned to a worker, with
    its own quotas, weight, retry policy, sticky-error state, and
    statistics.

    ``durability`` selects what a worker loss costs this tenant:

    ``"none"``
        The default and the original semantics — allocations are
        epoch-stamped and fail fast with DeviceLost after a respawn;
        the hot launch path carries no journaling.
    ``"journal"``
        Every state-mutating op is journaled in the parent; after a
        respawn the supervisor replays the full journal onto the
        fresh epoch (deterministic execution makes the replay
        bit-identical) and re-maps the tenant's handles, so existing
        ``RemoteAllocation`` handles keep working.
    ``"checkpoint"``
        Journal plus periodic snapshots of live allocation contents
        through the pool's :class:`~repro.runtime.state_store.
        StateStore` (every ``checkpoint_interval`` executed launches,
        or explicitly via :meth:`checkpoint`); the journal is
        truncated to the store's retention floor, so restore replays
        only the tail.

    Durable sessions serialize their own state-mutating operations
    (journal order must match worker execution order); tenants on the
    same worker are unaffected — RPCs are multiplexed and each session
    has its own journal lock."""

    def __init__(
        self,
        pool: "DevicePool",
        tenant: str,
        worker: _Worker,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        max_launches: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        durability: str = "none",
        checkpoint_interval: int = 32,
        restore_timeout: float = 60.0,
        store: Optional[StateStore] = None,
    ):
        if durability not in _DURABILITY_MODES:
            raise ValueError(
                f"unknown durability {durability!r} "
                f"(have {_DURABILITY_MODES})"
            )
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, "
                f"got {checkpoint_interval}"
            )
        self.pool = pool
        self.tenant = tenant
        self.weight = weight
        self.max_pending = max_pending
        self.max_launches = max_launches
        self.retry = retry
        self.durability = durability
        self.checkpoint_interval = checkpoint_interval
        self._worker = worker
        self.stats = TenantStatistics(
            tenant=tenant, worker=worker.index, weight=weight
        )
        #: Sticky per-tenant fault: set when one of this tenant's
        #: launches traps; cleared by :meth:`reset`. Infrastructure
        #: failures (DeviceLost) are *not* sticky — the respawned
        #: worker serves the tenant's next launch.
        self.last_error: Optional[BaseException] = None
        self._pending = 0
        self._condition = threading.Condition()
        #: Durability state. ``_durable`` gates every journaling
        #: branch, so durability="none" sessions run the original
        #: code paths unchanged.
        self._durable = durability != "none"
        self._store = store if durability == "checkpoint" else None
        self._restore_timeout = restore_timeout
        if self._durable:
            #: Operation journal: tuples in worker execution order.
            #: ("malloc", local, size, label) / ("upload", local,
            #: data, label) / ("write", local, data) / ("free", local)
            #: / ("launch", kernel, grid, block, args) — args carry
            #: tenant-local ``__handle__`` markers.
            self._journal: List[tuple] = []
            #: Absolute index of journal entry 0 (grows as checkpoints
            #: truncate the journal).
            self._journal_base = 0
            #: Tenant-local handle -> {"handle" (worker), "size",
            #: "label"} — rebuilt by restore, so RemoteAllocations
            #: stamped with the local handle survive respawns.
            self._slots: Dict[int, dict] = {}
            self._next_local = 1
            #: Worker epoch the slot map is valid for; a respawn bumps
            #: the worker epoch and restore catches this up.
            self._ready_epoch = worker.epoch
            #: Serializes mutating ops + journal appends + restore.
            self._state_lock = threading.RLock()
            self._restored = threading.Condition(self._state_lock)
            #: Launches caught by a worker loss, waiting for restore.
            self._parked_lock = threading.Lock()
            self._parked: List[_LaunchJob] = []
            self._launches_since_checkpoint = 0

    @property
    def worker_index(self) -> int:
        return self._worker.index

    @property
    def device_epoch(self) -> int:
        """The worker's current device epoch (bumps on respawn)."""
        return self._worker.epoch

    @property
    def pending(self) -> int:
        """Launches submitted but not yet completed (queue depth)."""
        with self._condition:
            return self._pending

    # -- memory & modules -------------------------------------------------

    def register_module(self, source: str) -> List[str]:
        """Register a tenant-private module on this tenant's worker
        (pool.register_module broadcasts to every worker instead).
        Journaled: a respawned worker re-registers it automatically."""
        return self._worker.register(source)

    def malloc(
        self, size: int, label: Optional[str] = None
    ) -> RemoteAllocation:
        if not self._durable:
            epoch = self._worker.epoch
            reply = self._worker.call("malloc", size=size, label=label)
            return RemoteAllocation(self.tenant, epoch=epoch, **reply)
        with self._state_lock:
            self._await_ready_locked()
            reply = self._retry_lost(
                lambda: self._worker.call(
                    "malloc", size=size, label=label
                )
            )
            local = self._next_local
            self._next_local += 1
            self._slots[local] = {
                "handle": reply["handle"],
                "size": reply["size"],
                "label": label,
            }
            self._journal.append(("malloc", local, int(size), label))
            return RemoteAllocation(
                self.tenant,
                handle=local,
                address=reply["address"],
                size=reply["size"],
                epoch=self._worker.epoch,
            )

    def upload(
        self, array: np.ndarray, label: Optional[str] = None
    ) -> RemoteAllocation:
        if not self._durable:
            epoch = self._worker.epoch
            reply = self._worker.call(
                "upload", data=np.asarray(array), label=label
            )
            return RemoteAllocation(self.tenant, epoch=epoch, **reply)
        data = np.array(array, copy=True)
        with self._state_lock:
            self._await_ready_locked()
            reply = self._retry_lost(
                lambda: self._worker.call(
                    "upload", data=data, label=label
                )
            )
            local = self._next_local
            self._next_local += 1
            self._slots[local] = {
                "handle": reply["handle"],
                "size": reply["size"],
                "label": label,
            }
            self._journal.append(("upload", local, data, label))
            return RemoteAllocation(
                self.tenant,
                handle=local,
                address=reply["address"],
                size=reply["size"],
                epoch=self._worker.epoch,
            )

    def _check_epoch(self, allocation: RemoteAllocation) -> None:
        current = self._worker.epoch
        if allocation.epoch != current:
            raise DeviceLost(
                f"allocation handle {allocation.handle} of tenant "
                f"{self.tenant!r} was created at device epoch "
                f"{allocation.epoch}, but worker {self._worker.index} "
                f"was lost and respawned (now epoch {current}); its "
                f"memory is gone — re-allocate and re-upload",
                worker=self._worker.index,
                cause="stale allocation epoch",
                epoch=allocation.epoch,
                delivered=False,
            )

    def write(self, allocation: RemoteAllocation, array) -> None:
        if not self._durable:
            self._check_epoch(allocation)
            self._worker.call(
                "write", handle=allocation.handle,
                data=np.asarray(array),
            )
            return
        data = np.array(array, copy=True)
        with self._state_lock:
            self._await_ready_locked()
            self._retry_lost(
                lambda: self._worker.call(
                    "write",
                    handle=self._slot_handle(allocation),
                    data=data,
                )
            )
            self._journal.append(("write", allocation.handle, data))

    def read(
        self, allocation: RemoteAllocation, dtype, count: int
    ) -> np.ndarray:
        if not self._durable:
            self._check_epoch(allocation)
            return self._worker.call(
                "read",
                handle=allocation.handle,
                dtype=np.dtype(dtype).str,
                count=count,
            )
        with self._state_lock:
            self._await_ready_locked()
            return self._retry_lost(
                lambda: self._worker.call(
                    "read",
                    handle=self._slot_handle(allocation),
                    dtype=np.dtype(dtype).str,
                    count=count,
                )
            )

    def free(self, allocation: RemoteAllocation) -> None:
        if not self._durable:
            self._check_epoch(allocation)
            self._worker.call("free", handle=allocation.handle)
            return
        with self._state_lock:
            self._await_ready_locked()
            self._retry_lost(
                lambda: self._worker.call(
                    "free", handle=self._slot_handle(allocation)
                )
            )
            self._slots.pop(allocation.handle, None)
            self._journal.append(("free", allocation.handle))

    # -- durability internals ----------------------------------------------

    def _ready_now(self) -> bool:
        """True when the slot map matches the worker's live epoch (no
        restore pending). Lock-free: reads of these fields are atomic
        and restore publishes ``_ready_epoch`` last."""
        worker = self._worker
        return not worker.lost and self._ready_epoch == worker.epoch

    def _await_ready_locked(self, timeout: Optional[float] = None):
        """Wait (under ``_state_lock``, released while waiting) until
        the supervisor has restored this tenant onto the worker's
        current epoch."""
        deadline = time.monotonic() + (
            self._restore_timeout if timeout is None else timeout
        )
        while True:
            if self._ready_now():
                return
            if self.pool._closed:
                raise LaunchError("device pool is shut down")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                worker = self._worker
                raise DeviceLost(
                    f"tenant {self.tenant!r} was not restored onto "
                    f"worker {worker.index} within "
                    f"{self._restore_timeout}s",
                    worker=worker.index,
                    cause="restore timeout",
                    epoch=worker.epoch,
                    delivered=False,
                )
            self._restored.wait(min(0.05, remaining))

    def _retry_lost(self, operation):
        """Run one durable memory RPC; on DeviceLost wait out the
        restore and retry. Safe because the failed attempt was never
        journaled: the restore rewinds the worker to the journaled
        state, and the retry re-applies the op exactly once."""
        attempts = 0
        while True:
            try:
                return operation()
            except DeviceLost:
                attempts += 1
                if attempts >= _RESTORE_DISPATCH_LIMIT:
                    raise
                self._await_ready_locked()

    def _slot_handle(self, allocation: RemoteAllocation) -> int:
        slot = self._slots.get(allocation.handle)
        if slot is None:
            raise LaunchError(
                f"allocation handle {allocation.handle} of tenant "
                f"{self.tenant!r} was freed (or never existed)"
            )
        return slot["handle"]

    # -- launches ----------------------------------------------------------

    def launch_async(
        self,
        kernel: str,
        grid,
        block,
        args: Sequence[object] = (),
        deadline: Optional[float] = None,
    ) -> LaunchFuture:
        """Queue one launch through the pool's fair scheduler; returns
        a LaunchFuture with the same delivery semantics as
        ``Device.launch_async``. ``deadline`` (seconds) bounds queue
        wait: a launch not dispatched in time fails with
        :class:`~repro.errors.DeadlineExpired` instead of running
        late."""
        from ..api.device import _normalize_dim

        grid = _normalize_dim(grid, which="grid")
        block = _normalize_dim(block, which="block")
        self.pool._admit()
        if self.last_error is not None:
            raise LaunchError(
                f"tenant {self.tenant!r} is in a failed state "
                f"({type(self.last_error).__name__}: {self.last_error}); "
                f"call TenantSession.reset() to clear it"
            )
        serialized, allocations = self._serialize_args(args)
        if self._durable:
            # Handles are tenant-local and survive respawns; reject
            # only references to buffers this session already freed.
            for allocation in allocations:
                if allocation.handle not in self._slots:
                    raise LaunchError(
                        f"allocation handle {allocation.handle} of "
                        f"tenant {self.tenant!r} was freed (or never "
                        f"existed)"
                    )
        else:
            for allocation in allocations:
                self._check_epoch(allocation)
        with self._condition:
            if (
                self.max_launches is not None
                and self.stats.submitted >= self.max_launches
            ):
                self.stats.rejected += 1
                raise QuotaExceeded(
                    f"tenant {self.tenant!r} exhausted its lifetime "
                    f"launch quota ({self.max_launches})"
                )
            if (
                self.max_pending is not None
                and self._pending >= self.max_pending
            ):
                self.stats.rejected += 1
                raise QuotaExceeded(
                    f"tenant {self.tenant!r} has {self._pending} "
                    f"launches outstanding (quota {self.max_pending}); "
                    f"collect results before submitting more"
                )
            self.stats.submitted += 1
            self._pending += 1
        future = LaunchFuture(kernel)
        job = _LaunchJob(
            future, kernel, grid, block, serialized, allocations,
            deadline=deadline,
        )
        try:
            self.pool._submit(self, job)
        except Exception:
            with self._condition:
                self.stats.submitted -= 1
                self._pending -= 1
                self._condition.notify_all()
            raise
        return future

    def launch(self, kernel: str, grid, block, args: Sequence[object] = ()):
        """Synchronous launch: submit + wait."""
        return self.launch_async(kernel, grid, block, args).result()

    def _serialize_args(
        self, args: Sequence[object]
    ) -> Tuple[List[object], List[RemoteAllocation]]:
        serialized: List[object] = []
        allocations: List[RemoteAllocation] = []
        for value in args:
            if isinstance(value, RemoteAllocation):
                if value.tenant != self.tenant:
                    raise LaunchError(
                        f"allocation belongs to tenant "
                        f"{value.tenant!r}, not {self.tenant!r}"
                    )
                allocations.append(value)
                serialized.append({"__handle__": value.handle})
            else:
                serialized.append(value)
        return serialized, allocations

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted launch has completed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise LaunchError(
                            f"tenant {self.tenant!r} still has "
                            f"{self._pending} launches outstanding "
                            f"after {timeout}s"
                        )
                self._condition.wait(remaining)

    def reset(self) -> None:
        """Clear this tenant's sticky fault (the worker device was
        already recovered when the fault was contained)."""
        self._worker.call("reset")
        self.last_error = None

    # -- fault injection & introspection ----------------------------------

    def inject_fault(
        self,
        site: str,
        probability: float = 1.0,
        seed: Optional[int] = None,
        **options,
    ) -> None:
        """Arm a :class:`repro.testing.FaultInjector` site on this
        tenant's *worker device* (device-scoped, like real hardware
        faults — tenants sharing the worker may observe it too).
        RemoteAllocation options are translated to worker handles."""
        translated = {}
        for key, value in options.items():
            if isinstance(value, RemoteAllocation):
                translated[key] = (value.address, value.size)
            else:
                translated[key] = value
        self._worker.call(
            "arm_fault",
            site=site,
            probability=probability,
            seed=seed,
            options=translated,
        )

    def disarm_faults(self) -> None:
        self._worker.call("disarm_faults")

    def statistics(self) -> TenantStatistics:
        return self.stats

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> Optional[int]:
        """Snapshot every live allocation to the pool's state store
        and truncate the journal to the store's retention floor.
        Returns the new checkpoint sequence number, or ``None`` when
        the snapshot was abandoned (disk error, or the worker was lost
        mid-snapshot) — the previous checkpoint stays intact either
        way. Requires ``durability="checkpoint"``."""
        if self.durability != "checkpoint" or self._store is None:
            raise LaunchError(
                f"tenant {self.tenant!r} has durability="
                f"{self.durability!r}; checkpoints need "
                f"durability=\"checkpoint\""
            )
        with self._state_lock:
            self._await_ready_locked()
            snapshot = []
            try:
                for local in sorted(self._slots):
                    slot = self._slots[local]
                    data = self._worker.call(
                        "read",
                        handle=slot["handle"],
                        dtype="|u1",
                        count=slot["size"],
                    )
                    snapshot.append({
                        "local": local,
                        "size": slot["size"],
                        "label": slot.get("label"),
                        "data": np.asarray(
                            data, dtype=np.uint8
                        ).tobytes(),
                    })
            except DeviceLost:
                self.stats.checkpoint_errors += 1
                return None
            index = self._journal_base + len(self._journal)
            seq = self._store.store_checkpoint(
                self.tenant, index, snapshot
            )
            if seq is None:
                self.stats.checkpoint_errors += 1
                return None
            self.stats.checkpoints += 1
            self.stats.checkpoint_bytes += sum(
                len(entry["data"]) for entry in snapshot
            )
            self._launches_since_checkpoint = 0
            # Truncate only below what every *retained valid*
            # checkpoint covers: a torn newest manifest then still
            # falls back to the previous checkpoint + a longer replay.
            floor = self._store.journal_floor(self.tenant)
            if floor > self._journal_base:
                del self._journal[: floor - self._journal_base]
                self._journal_base = floor
            return seq

    def _maybe_checkpoint(self) -> None:
        """Auto-checkpoint trigger, fired by the dispatcher after a
        completed launch (outside the session's accounting locks)."""
        if self.durability != "checkpoint" or self._store is None:
            return
        if self._launches_since_checkpoint < self.checkpoint_interval:
            return
        try:
            self.checkpoint()
        except (LaunchError, DeviceLost):
            pass

    # -- dispatch & restore (called by pool threads) ------------------------

    def _launch_on_worker(self, worker: _Worker, job: _LaunchJob):
        """Run one launch RPC for the pool dispatcher. Durable
        sessions translate tenant-local handles to the worker's
        current handles and journal the launch once it is known to
        have executed (success or contained fault). A launch that
        fails with DeviceLost is *not* journaled — the restore rewinds
        guest state to before it ran, which is what makes re-
        dispatching even a delivered casualty safe."""
        if not self._durable:
            return worker.call(
                "launch",
                kernel=job.kernel,
                grid=job.grid,
                block=job.block,
                args=job.args,
            )
        with self._state_lock:
            if worker.lost:
                raise worker.lost_error(job.kernel, delivered=False)
            if self._ready_epoch != worker.epoch:
                # Never block the (shared, per-worker) dispatcher on a
                # restore: park and re-dispatch afterwards.
                raise DeviceLost(
                    f"launch of {job.kernel!r} for tenant "
                    f"{self.tenant!r} arrived before the tenant was "
                    f"restored onto worker {worker.index}",
                    worker=worker.index,
                    cause="restore pending",
                    epoch=worker.epoch,
                    delivered=False,
                )
            args = self._translate_args_locked(job.args, job.kernel)
            try:
                result = worker.call(
                    "launch",
                    kernel=job.kernel,
                    grid=job.grid,
                    block=job.block,
                    args=args,
                )
            except _FAULT_TYPES:
                # A contained fault still executed (deterministically,
                # partial writes included): replay must reproduce it.
                self._journal.append(
                    ("launch", job.kernel, job.grid, job.block,
                     list(job.args))
                )
                self._launches_since_checkpoint += 1
                raise
            self._journal.append(
                ("launch", job.kernel, job.grid, job.block,
                 list(job.args))
            )
            self._launches_since_checkpoint += 1
            return result

    def _translate_args_locked(self, args, kernel: str) -> List[object]:
        translated: List[object] = []
        for value in args:
            if isinstance(value, dict) and "__handle__" in value:
                slot = self._slots.get(value["__handle__"])
                if slot is None:
                    raise LaunchError(
                        f"launch of {kernel!r} references allocation "
                        f"handle {value['__handle__']} of tenant "
                        f"{self.tenant!r} that was freed"
                    )
                translated.append({"__handle__": slot["handle"]})
            else:
                translated.append(value)
        return translated

    def _park_job(self, job: _LaunchJob) -> bool:
        """Park a launch caught by a worker loss until the restore
        completes. Returns False when the session became ready
        between the caller's check and here — the caller re-queues
        immediately instead (no lost wakeups: the restore drains the
        parked list under the same lock *after* publishing
        readiness)."""
        with self._parked_lock:
            if self._ready_now():
                return False
            self._parked.append(job)
            return True

    def _drain_parked(self) -> List[_LaunchJob]:
        with self._parked_lock:
            parked = self._parked
            self._parked = []
            return parked

    def _release_parked(self) -> None:
        for job in self._drain_parked():
            job.restored = True
            self.pool._requeue(self, job)

    def _restore(self, worker: _Worker) -> None:
        """Rebuild this tenant's guest state on a respawned worker
        (supervisor thread): newest valid checkpoint (torn/corrupt
        ones are discarded by the store — fall back to the previous,
        or to a full journal replay), then the journal tail, in
        original order — deterministic execution guarantees the
        rebuilt guest memory is bit-identical. Tenant-local handles
        are re-mapped onto the new worker handles, readiness is
        published, and parked launches are re-queued. Raises
        DeviceLost when the worker dies mid-restore; the next
        supervision pass retries on the following epoch."""
        with self._state_lock:
            if self._ready_now() or worker.lost:
                return
            started = time.monotonic()
            epoch = worker.epoch
            slots: Dict[int, dict] = {}
            start_index = 0
            replayed = 0
            checkpoint = None
            if self.durability == "checkpoint" and self._store is not None:
                checkpoint = self._store.load_latest(self.tenant)
            try:
                if checkpoint is not None:
                    for entry in checkpoint.allocations:
                        self.pool._hook_restore_step(
                            worker, "checkpoint"
                        )
                        reply = worker.call(
                            "malloc",
                            size=entry["size"],
                            label=entry.get("label"),
                        )
                        worker.call(
                            "write",
                            handle=reply["handle"],
                            data=np.frombuffer(
                                entry["data"], dtype=np.uint8
                            ),
                        )
                        slots[entry["local"]] = {
                            "handle": reply["handle"],
                            "size": entry["size"],
                            "label": entry.get("label"),
                        }
                    start_index = checkpoint.journal_index
                if start_index < self._journal_base:
                    self._restore_failed(
                        worker,
                        "the journal was truncated below the newest "
                        "valid checkpoint (no retained checkpoint "
                        "verifies)",
                    )
                    return
                for entry in self._journal[
                    start_index - self._journal_base:
                ]:
                    self.pool._hook_restore_step(worker, entry[0])
                    self._replay_locked(worker, entry, slots)
                    replayed += 1
            except DeviceLost:
                raise
            except Exception as error:
                # A non-infrastructure replay failure is
                # deterministic: retrying cannot converge.
                self._restore_failed(
                    worker, f"replay error: {error}"
                )
                return
            self._slots = slots
            self._ready_epoch = epoch
            elapsed = time.monotonic() - started
            self.stats.restores += 1
            self.stats.restore_seconds += elapsed
            self.stats.replayed_ops += replayed
            with worker.lock:
                worker.restores += 1
                worker.last_restore_seconds = elapsed
            self._restored.notify_all()
        self._release_parked()

    def _replay_locked(
        self, worker: _Worker, entry: tuple, slots: Dict[int, dict]
    ) -> None:
        kind = entry[0]
        if kind == "malloc":
            _, local, size, label = entry
            reply = worker.call("malloc", size=size, label=label)
            slots[local] = {
                "handle": reply["handle"],
                "size": reply["size"],
                "label": label,
            }
        elif kind == "upload":
            _, local, data, label = entry
            reply = worker.call("upload", data=data, label=label)
            slots[local] = {
                "handle": reply["handle"],
                "size": reply["size"],
                "label": label,
            }
        elif kind == "write":
            _, local, data = entry
            worker.call(
                "write", handle=slots[local]["handle"], data=data
            )
        elif kind == "free":
            _, local = entry
            worker.call("free", handle=slots[local]["handle"])
            del slots[local]
        elif kind == "launch":
            _, kernel, grid, block, args = entry
            translated = []
            for value in args:
                if isinstance(value, dict) and "__handle__" in value:
                    translated.append(
                        {"__handle__": slots[value["__handle__"]]["handle"]}
                    )
                else:
                    translated.append(value)
            try:
                worker.call(
                    "launch", kernel=kernel, grid=grid, block=block,
                    args=translated,
                )
            except _FAULT_TYPES:
                # Deterministic replay reproduces the original
                # contained fault (partial writes included); the
                # worker device already reset itself.
                pass

    def _restore_failed(self, worker: _Worker, reason: str) -> None:
        """Give up restoring (no valid state survived): publish an
        *empty* ready state so the session stays usable, and fail the
        parked launches with a structured DeviceLost."""
        error = DeviceLost(
            f"tenant {self.tenant!r} could not be restored onto "
            f"worker {worker.index}: {reason}",
            worker=worker.index,
            cause="restore failed",
            epoch=worker.epoch,
            delivered=False,
        )
        self.stats.restore_failures += 1
        self._slots = {}
        self._journal = []
        self._journal_base = 0
        self._ready_epoch = worker.epoch
        self._restored.notify_all()
        for job in self._drain_parked():
            job.future._fail(error)
            self._complete(job, None, error)

    # -- internal accounting (called by the pool dispatcher) ---------------

    def _complete(self, job: _LaunchJob, result, error) -> None:
        elapsed = time.monotonic() - job.submitted_at
        with self._condition:
            self.stats.host_seconds += elapsed
            if error is None:
                self.stats.completed += 1
                self.stats.statistics.merge(result.statistics)
            else:
                self.stats.failed += 1
                if isinstance(error, KernelTrap):
                    self.stats.traps += 1
                elif isinstance(error, LaunchTimeout):
                    self.stats.timeouts += 1
                elif isinstance(error, DeviceLost):
                    self.stats.device_lost += 1
                elif isinstance(error, DeadlineExpired):
                    self.stats.expired += 1
                partial = getattr(error, "statistics", None)
                if partial is not None:
                    self.stats.statistics.merge(partial)
                self.stats.record_trap_report(
                    getattr(error, "remote_report", None)
                )
                if isinstance(error, _FAULT_TYPES):
                    self.last_error = error
            self._pending -= 1
            self._condition.notify_all()


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


def _default_start_method() -> str:
    override = os.environ.get("REPRO_POOL_START", "").strip()
    if override:
        return override
    return "spawn"


def _retry_seed() -> int:
    try:
        return int(os.environ.get("REPRO_FAULT_SEED", 0))
    except ValueError:
        return 0


class DevicePool:
    """Shards independent kernel launches across persistent worker
    processes, with per-tenant quotas, weighted fair queueing,
    per-tenant statistics/trap reporting, and process-level
    self-healing (supervision, warm respawn, retry, circuit breaking).

    ::

        pool = DevicePool(workers=4, modules=[PTX], warm=True)
        session = pool.session("alice", weight=2.0, max_pending=8,
                               retry=RetryPolicy(max_attempts=3))
        buffer = session.upload(host_array)
        future = session.launch_async("vecAdd", grid=8, block=64,
                                      args=[buffer, buffer, out, n])
        result = future.result()
        pool.shutdown()

    Supervision knobs: ``supervise`` runs the health thread (on by
    default); ``respawn`` re-creates lost workers warm; a worker with
    a request in flight longer than ``hang_timeout`` seconds is
    declared hung and recycled; an idle worker is heartbeat-pinged
    every ``probe_interval`` seconds and declared hung after
    ``probe_timeout`` seconds of silence; ``circuit_threshold``
    consecutive infrastructure failures open the worker's breaker for
    ``circuit_cooldown`` seconds."""

    def __init__(
        self,
        workers: int = 2,
        config=None,
        machine=None,
        memory_size: int = 1 << 26,
        modules: Sequence[str] = (),
        warm: bool = False,
        start_method: Optional[str] = None,
        supervise: bool = True,
        respawn: bool = True,
        hang_timeout: Optional[float] = 120.0,
        probe_interval: float = 5.0,
        probe_timeout: float = 30.0,
        circuit_threshold: int = 3,
        circuit_cooldown: float = 2.0,
        state_dir: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"invalid worker count {workers}")
        context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._respawn = respawn
        #: Durability tier: built lazily when the first
        #: durability="checkpoint" session is created. ``state_dir``
        #: overrides the default (~/.cache/repro/state or
        #: $REPRO_STATE_DIR).
        self._state_dir = state_dir
        self._state_store: Optional[StateStore] = None
        self._hang_timeout = hang_timeout
        self._probe_interval = probe_interval
        self._probe_timeout = probe_timeout
        self._retry_rng = random.Random(_retry_seed())
        self._workers = [
            _Worker(
                index, context, config, machine, memory_size,
                modules, warm,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.breaker = CircuitBreaker(
                threshold=circuit_threshold, cooldown=circuit_cooldown
            )
            worker._on_lost = self._worker_lost
        self._sessions: Dict[str, TenantSession] = {}
        self._sessions_lock = threading.Lock()
        self._queues = [WeightedFairQueue() for _ in self._workers]
        self._conditions = [threading.Condition() for _ in self._workers]
        self._closed = False
        self._draining = False
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(worker,),
                name=f"repro-pool-dispatch-{worker.index}",
                daemon=True,
            )
            for worker in self._workers
        ]
        for dispatcher in self._dispatchers:
            dispatcher.start()
        self._supervisor_wake = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise_loop,
                name="repro-pool-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop admitting new launches (submissions fail with
        :class:`~repro.errors.ServiceUnavailable`), then block until
        every already-queued launch has completed."""
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        for session in self.sessions():
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            session.synchronize(timeout=remaining)

    def shutdown(self) -> None:
        """Stop supervision and dispatchers, then terminate the worker
        processes (escalating to kill for survivors). Queued launches
        that never ran fail fast through their futures; a dispatcher
        blocked on a slow worker is interrupted rather than waited
        out."""
        if self._closed:
            return
        self._closed = True
        self._supervisor_wake.set()
        for condition in self._conditions:
            with condition:
                condition.notify_all()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10)
        # Interrupt any dispatcher (or tenant thread) still waiting on
        # a worker reply, then reap the processes.
        for worker in self._workers:
            worker.shutdown()
        for dispatcher in self._dispatchers:
            dispatcher.join(timeout=10)
        # Fail whatever never got dispatched.
        for queue_, worker in zip(self._queues, self._workers):
            while True:
                entry = queue_.pop()
                if entry is None:
                    break
                tenant, job = entry
                session = self._sessions.get(tenant)
                error = LaunchError("device pool was shut down")
                job.future._fail(error)
                if session is not None:
                    session._complete(job, None, error)
        # ... and whatever was parked behind a restore that will now
        # never run.
        for session in self.sessions():
            if not session._durable:
                continue
            for job in session._drain_parked():
                error = LaunchError("device pool was shut down")
                job.future._fail(error)
                session._complete(job, None, error)

    # -- tenants -----------------------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._workers)

    def register_module(self, source: str) -> List[str]:
        """Register a module on every worker (pool-wide kernels).
        Journaled per worker: respawned workers re-register it."""
        kernels: List[str] = []
        for worker in self._workers:
            kernels = worker.register(source)
        return kernels

    def ready(self, timeout: Optional[float] = None) -> None:
        """Block until every worker process has finished starting up
        (device built, modules registered, warm() done). Purely a
        round-trip; new tenants can launch immediately afterwards
        without paying worker-start latency."""
        for worker in self._workers:
            worker.call("statistics", timeout=timeout)

    def session(
        self,
        tenant: str,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        max_launches: Optional[int] = None,
        worker: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        durability: str = "none",
        checkpoint_interval: int = 32,
        restore_timeout: float = 60.0,
    ) -> TenantSession:
        """Create (or fetch) the tenant's session. New tenants are
        pinned to the least-populated worker unless ``worker`` pins
        one explicitly. ``durability`` opts the session into the
        journaling/checkpoint restore layer (see
        :class:`TenantSession`); ``checkpoint_interval`` is the
        auto-checkpoint period in executed launches and
        ``restore_timeout`` bounds how long durable operations wait
        for a pending restore."""
        with self._sessions_lock:
            existing = self._sessions.get(tenant)
            if existing is not None:
                return existing
            if durability == "checkpoint" and self._state_store is None:
                self._state_store = StateStore(
                    directory=self._state_dir
                )
            if worker is None:
                population = {index: 0 for index in range(self.workers)}
                for session in self._sessions.values():
                    population[session.worker_index] += 1
                worker = min(
                    population, key=lambda index: (population[index], index)
                )
            if not 0 <= worker < self.workers:
                raise ValueError(
                    f"worker {worker} out of range (have {self.workers})"
                )
            session = TenantSession(
                self,
                tenant,
                self._workers[worker],
                weight=weight,
                max_pending=max_pending,
                max_launches=max_launches,
                retry=retry,
                durability=durability,
                checkpoint_interval=checkpoint_interval,
                restore_timeout=restore_timeout,
                store=self._state_store,
            )
            self._sessions[tenant] = session
            with self._conditions[worker]:
                self._queues[worker].add(tenant, weight)
            return session

    def sessions(self) -> List[TenantSession]:
        with self._sessions_lock:
            return list(self._sessions.values())

    # -- scheduling --------------------------------------------------------

    def _admit(self) -> None:
        """Gate new submissions: closed and draining pools shed."""
        if self._closed:
            raise LaunchError("device pool is shut down")
        if self._draining:
            raise ServiceUnavailable(
                "device pool is draining for shutdown", retry_after=1.0
            )

    def _submit(self, session: TenantSession, job: _LaunchJob) -> None:
        self._admit()
        index = session.worker_index
        with self._conditions[index]:
            self._queues[index].push(session.tenant, job)
            self._conditions[index].notify()

    def _requeue(self, session: TenantSession, job: _LaunchJob) -> None:
        """Re-enter a retried job into its worker's fair queue (fired
        from a backoff timer)."""
        if self._closed:
            error = LaunchError("device pool was shut down")
            job.future._fail(error)
            session._complete(job, None, error)
            return
        index = session.worker_index
        with self._conditions[index]:
            self._queues[index].push(session.tenant, job)
            self._conditions[index].notify()

    def _maybe_retry(
        self, session: TenantSession, job: _LaunchJob, error: BaseException
    ) -> bool:
        """Schedule an automatic re-dispatch when the session's
        RetryPolicy covers this failure. Only infrastructure failures
        of *undelivered* requests qualify — a request the dead worker
        already received may have mutated guest memory."""
        policy = session.retry
        if policy is None:
            return False
        if not isinstance(error, DeviceLost) or error.delivered:
            return False
        if error.cause == "stale allocation epoch":
            # Retrying cannot resurrect the allocation's memory.
            return False
        if job.attempts + 1 >= policy.max_attempts:
            return False
        job.attempts += 1
        delay = policy.backoff(job.attempts, self._retry_rng)
        elapsed = time.monotonic() - job.submitted_at
        if (
            policy.deadline is not None
            and elapsed + delay > policy.deadline
        ):
            return False
        if job.deadline is not None and (
            time.monotonic() + delay > job.deadline
        ):
            return False
        session.stats.retries += 1
        timer = threading.Timer(
            delay, self._requeue, args=(session, job)
        )
        timer.daemon = True
        timer.start()
        return True

    def _dispatch_job(
        self, worker: _Worker, session: TenantSession, job: _LaunchJob
    ) -> None:
        if session.last_error is not None:
            # Sticky tenant fault: fail queued launches fast, like
            # Device.launch on a faulted device.
            error = LaunchError(
                f"tenant {session.tenant!r} is in a failed state "
                f"({type(session.last_error).__name__}); call "
                f"TenantSession.reset() to clear it"
            )
            job.future._fail(error)
            session._complete(job, None, error)
            return
        if job.deadline is not None and time.monotonic() > job.deadline:
            error = DeadlineExpired(
                f"launch of {job.kernel!r} for tenant "
                f"{session.tenant!r} aged past its "
                f"{job.deadline - job.submitted_at:.3f}s request "
                f"deadline before dispatch (attempt {job.attempts + 1})"
            )
            job.future._fail(error)
            session._complete(job, None, error)
            return
        stale = None
        if not session._durable:
            # Durable sessions re-map handles across epochs; the
            # stale-epoch fail-fast only applies to durability="none".
            stale = next(
                (
                    allocation
                    for allocation in job.allocations
                    if allocation.epoch != worker.epoch
                ),
                None,
            )
        if stale is not None:
            error = DeviceLost(
                f"launch of {job.kernel!r} for tenant "
                f"{session.tenant!r} references allocation handle "
                f"{stale.handle} from device epoch {stale.epoch}, but "
                f"worker {worker.index} was respawned (now epoch "
                f"{worker.epoch}); its memory is gone",
                worker=worker.index,
                cause="stale allocation epoch",
                epoch=stale.epoch,
                delivered=False,
            )
            job.future._fail(error)
            session._complete(job, None, error)
            return
        try:
            if worker.lost:
                raise worker.lost_error(job.kernel, delivered=False)
            result = session._launch_on_worker(worker, job)
        except Exception as error:
            if (
                session._durable
                and isinstance(error, DeviceLost)
                and error.cause != "restore failed"
                and job.restore_attempts < _RESTORE_DISPATCH_LIMIT
            ):
                # The durability layer absorbs the loss: restore
                # rewinds guest state to before any un-journaled
                # launch, so even a delivered casualty is safe to
                # re-dispatch once the tenant is restored.
                job.restore_attempts += 1
                if session._park_job(job):
                    return
                # Restore finished between the failure and the park:
                # back into the fair queue immediately.
                self._requeue(session, job)
                return
            if self._maybe_retry(session, job, error):
                return
            job.future._fail(error)
            session._complete(job, None, error)
        else:
            if job.restored:
                result.restored = True
                session.stats.restored_launches += 1
            job.future._resolve(result)
            session._complete(job, result, None)
            session._maybe_checkpoint()

    def _dispatch_loop(self, worker: _Worker) -> None:
        queue_ = self._queues[worker.index]
        condition = self._conditions[worker.index]
        while True:
            with condition:
                entry = queue_.pop()
                while entry is None:
                    if self._closed:
                        return
                    condition.wait(0.5)
                    entry = queue_.pop()
            tenant, job = entry
            session = self._sessions[tenant]
            self._dispatch_job(worker, session, job)

    def synchronize(self) -> None:
        """Block until every tenant's submitted launches completed."""
        for session in self.sessions():
            session.synchronize()

    # -- supervision -------------------------------------------------------

    def _worker_lost(self, worker: _Worker) -> None:
        """Loss callback from any thread: wake the supervisor now."""
        self._supervisor_wake.set()

    def _hook_restore_step(self, worker: _Worker, op: str) -> None:
        """No-op seam fired before every restore step (checkpoint
        re-materialization and each journal replay op); the testing
        FaultInjector's ``kill_during_restore`` site patches this."""

    def _restore_tenants(self, worker: _Worker) -> None:
        """Restore every durable tenant pinned to a (healthy) worker
        whose slot map lags the worker's epoch. Idempotent; a worker
        lost mid-restore is retried on the next supervision pass."""
        for session in self.sessions():
            if (
                not session._durable
                or session.worker_index != worker.index
                or session._ready_now()
            ):
                continue
            try:
                session._restore(worker)
            except DeviceLost:
                return  # lost again mid-restore; next pass retries

    def _supervise_loop(self) -> None:
        while True:
            self._supervisor_wake.wait(0.1)
            self._supervisor_wake.clear()
            if self._closed:
                return
            for worker in self._workers:
                if self._closed:
                    return
                try:
                    self._supervise_worker(worker)
                except Exception:  # pragma: no cover - must survive
                    pass

    def _supervise_worker(self, worker: _Worker) -> None:
        now = time.monotonic()
        if not worker.lost:
            process = worker.process
            if process is None or not process.is_alive():
                # Let the elected reader drain any final replies
                # first; if nobody is waiting, declare the loss here.
                if worker.in_flight() == 0:
                    worker.mark_lost(
                        f"died (exit code "
                        f"{process.exitcode if process else 'none'})"
                    )
            else:
                age = worker.oldest_in_flight_age()
                if (
                    self._hang_timeout is not None
                    and age is not None
                    and age > self._hang_timeout
                ):
                    worker.mark_lost(
                        f"hung: request in flight for {age:.1f}s "
                        f"(hang timeout {self._hang_timeout}s)"
                    )
                elif (
                    age is None
                    and now - worker.last_seen >= self._probe_interval
                ):
                    try:
                        worker.call("ping", timeout=self._probe_timeout)
                    except DeviceLost:
                        pass
                    except LaunchError:
                        # Only a worker that *should* have been idle is
                        # declared hung on a missed heartbeat — a
                        # launch racing in behind the ping legitimately
                        # delays the reply.
                        if worker.in_flight() == 0:
                            worker.mark_lost(
                                f"hung: missed heartbeat (no ping "
                                f"reply in {self._probe_timeout}s)"
                            )
        if worker.lost and worker.needs_reap:
            worker.reap()
            worker.breaker.record_failure()
        if (
            worker.lost
            and self._respawn
            and not self._closed
            and worker.breaker.allow_probe()
        ):
            worker.respawn()
            try:
                worker.call("ping", timeout=self._probe_timeout)
                worker.breaker.record_success()
            except DeviceLost:
                pass  # lost again; next pass reaps and re-judges
            except LaunchError:
                worker.mark_lost(
                    f"hung: no heartbeat within {self._probe_timeout}s "
                    f"of respawn"
                )
        if not worker.lost:
            # Durable tenants whose slot map lags the live epoch are
            # restored here — right after a successful respawn probe,
            # and again on later passes if a restore was interrupted.
            self._restore_tenants(worker)

    # -- reporting ---------------------------------------------------------

    def statistics(self) -> Dict[str, TenantStatistics]:
        return {
            session.tenant: session.stats for session in self.sessions()
        }

    def health(self) -> List[WorkerHealth]:
        """Supervision snapshot of every worker slot."""
        return [worker.health() for worker in self._workers]

    def aggregate_statistics(self) -> LaunchStatistics:
        """Pool-level merged LaunchStatistics over every tenant."""
        merged = LaunchStatistics()
        for session in self.sessions():
            merged.merge(session.stats.statistics)
        return merged

    def worker_reports(self) -> List[str]:
        """Each worker device's ``statistics_report()`` line."""
        return [worker.call("statistics") for worker in self._workers]

    def report(self) -> str:
        """Pool-level serving report: per-tenant counters, worker
        health, and the aggregate."""
        sessions = self.sessions()
        lines = [
            f"== device pool: {self.workers} workers, "
            f"{len(sessions)} tenants =="
        ]
        header = (
            f"{'tenant':<16} {'worker':>6} {'weight':>6} {'done':>6} "
            f"{'fail':>5} {'traps':>5} {'lost':>5} {'retry':>5} "
            f"{'rest':>4} {'ckpt':>4} {'rejected':>8} {'host s':>8}"
        )
        lines.append(header)
        for session in sorted(sessions, key=lambda s: s.tenant):
            stats = session.stats
            lines.append(
                f"{stats.tenant:<16} {stats.worker:>6} "
                f"{stats.weight:>6.1f} {stats.completed:>6} "
                f"{stats.failed:>5} {stats.traps:>5} "
                f"{stats.device_lost:>5} {stats.retries:>5} "
                f"{stats.restores:>4} {stats.checkpoints:>4} "
                f"{stats.rejected:>8} {stats.host_seconds:>8.2f}"
            )
        lines.append("worker health:")
        for health in self.health():
            lines.append(f"  {health.describe()}")
        aggregate = self.aggregate_statistics()
        lines.append(
            f"aggregate: launches="
            f"{sum(s.stats.completed for s in sessions)} "
            f"failures={sum(s.stats.failed for s in sessions)} "
            f"traps={sum(s.stats.traps for s in sessions)} "
            f"device-lost={sum(s.stats.device_lost for s in sessions)} "
            f"retries={sum(s.stats.retries for s in sessions)} "
            f"instructions={aggregate.instructions} "
            f"modeled cycles={aggregate.total_cycles}"
        )
        return "\n".join(lines)
