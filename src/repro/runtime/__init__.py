"""Runtime: thread contexts, dynamic execution manager, warp formation,
translation cache, launcher and statistics (§3, §5)."""

from .cache_store import SCHEMA_VERSION, CacheStore
from .config import (
    ExecutionConfig,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from .context import ThreadContext, Warp
from .execution_manager import ExecutionManager, LaunchGeometry
from .launcher import KernelLauncher, LaunchResult, partition_ctas
from .pool import DevicePool, RemoteAllocation, TenantSession, TenantStatistics
from .statistics import LaunchStatistics
from .translation_cache import CacheStatistics, TranslationCache

__all__ = [
    "CacheStatistics",
    "CacheStore",
    "SCHEMA_VERSION",
    "DevicePool",
    "ExecutionConfig",
    "ExecutionManager",
    "KernelLauncher",
    "LaunchGeometry",
    "LaunchResult",
    "LaunchStatistics",
    "RemoteAllocation",
    "TenantSession",
    "TenantStatistics",
    "ThreadContext",
    "TranslationCache",
    "Warp",
    "baseline_config",
    "partition_ctas",
    "static_tie_config",
    "vectorized_config",
]
