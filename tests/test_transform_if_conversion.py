"""If-conversion pass tests (predication-style conditional data flow,
the paper's §7 contrast)."""

import numpy as np
import pytest

from repro import Device, ExecutionConfig, vectorized_config
from repro.frontend import translate_kernel
from repro.ir import (
    Branch,
    CondBranch,
    Select,
    Store,
    verify_function,
)
from repro.ptx import parse
from repro.transforms import if_convert
from tests.conftest import COLLATZ_PTX, collatz_steps

HEADER = ".version 2.3\n.target sim\n"


def scalar_of(source, name="k"):
    return translate_kernel(parse(HEADER + source).kernel(name))


DIAMOND = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mul.lo.u32 %r3, %r1, 3;
  add.u32 %r3, %r3, 1;
  bra JOIN;
EVEN:
  shr.u32 %r3, %r1, 1;
JOIN:
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r3;
  exit;
}
"""

TRIANGLE = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  mov.u32 %r3, 7;
  setp.lt.u32 %p1, %r1, 16;
  @%p1 bra JOIN;
  add.u32 %r3, %r1, 100;
JOIN:
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r3;
  exit;
}
"""

MEMORY_ARM = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  setp.lt.u32 %p1, %r1, 16;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  @%p1 bra JOIN;
  st.global.u32 [%rd3], %r1;
JOIN:
  st.global.u32 [%rd3], %r1;
  exit;
}
"""


def count(function, kind):
    return sum(
        1 for i in function.instructions() if isinstance(i, kind)
    )


class TestPatternMatching:
    def test_diamond_converted(self):
        function = scalar_of(DIAMOND)
        before = count(function, CondBranch)
        assert if_convert(function) == 1
        verify_function(function)
        assert count(function, CondBranch) == before - 1
        assert count(function, Select) >= 1

    def test_triangle_converted(self):
        function = scalar_of(TRIANGLE)
        assert if_convert(function) == 1
        verify_function(function)
        assert count(function, CondBranch) == 0

    def test_memory_arm_not_converted(self):
        function = scalar_of(MEMORY_ARM)
        assert if_convert(function) == 0
        assert count(function, CondBranch) == 1

    def test_arm_size_limit(self):
        function = scalar_of(DIAMOND)
        assert if_convert(function, max_arm_instructions=1) == 0

    def test_loop_exit_branch_survives(self):
        function = scalar_of(
            """
.entry k ()
{
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, 0;
LOOP:
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, 10;
  @%p1 bra LOOP;
  exit;
}
"""
        )
        assert if_convert(function) == 0

    def test_collatz_inner_diamond_removed(self):
        function = translate_kernel(
            parse(COLLATZ_PTX).kernel("collatz")
        )
        branches_before = count(function, CondBranch)
        converted = if_convert(function)
        verify_function(function)
        assert converted >= 1
        assert count(function, CondBranch) < branches_before


class TestSemantics:
    def _run(self, source, config, n=64):
        device = Device(config=config)
        device.register_module(HEADER + source)
        out = device.malloc(n * 4)
        device.launch("k", grid=(2, 1, 1), block=(32, 1, 1),
                      args=[out])
        return out.read(np.uint32, n)

    @pytest.mark.parametrize("source", [DIAMOND, TRIANGLE],
                             ids=["diamond", "triangle"])
    def test_results_unchanged(self, source):
        plain = self._run(source, vectorized_config(4))
        converted = self._run(
            source,
            ExecutionConfig(warp_sizes=(1, 2, 4), if_conversion=True),
        )
        assert np.array_equal(plain, converted)

    def test_collatz_end_to_end(self, rng):
        n = 128
        values = rng.integers(1, 1000, n).astype(np.uint32)
        expected = np.array(
            [collatz_steps(int(v)) for v in values], dtype=np.uint32
        )
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4), if_conversion=True
            )
        )
        device.register_module(COLLATZ_PTX)
        src = device.upload(values)
        dst = device.malloc(n * 4)
        result = device.launch(
            "collatz", grid=(2, 1, 1), block=(64, 1, 1),
            args=[src, dst, n],
        )
        assert np.array_equal(dst.read(np.uint32, n), expected)

    def test_reduces_divergence_on_collatz(self, rng, monkeypatch):
        # measuring if-conversion's divergence reduction needs a
        # meld-free baseline (the CI meld leg sets REPRO_MELD=1)
        monkeypatch.delenv("REPRO_MELD", raising=False)
        n = 256
        values = rng.integers(1, 2000, n).astype(np.uint32)

        def yields(config):
            device = Device(config=config)
            device.register_module(COLLATZ_PTX)
            src = device.upload(values)
            dst = device.malloc(n * 4)
            result = device.launch(
                "collatz", grid=(4, 1, 1), block=(64, 1, 1),
                args=[src, dst, n],
            )
            return result.statistics.divergent_yields

        plain = yields(vectorized_config(4))
        converted = yields(
            ExecutionConfig(warp_sizes=(1, 2, 4), if_conversion=True)
        )
        assert converted < plain / 2

    def test_whole_suite_correct_with_if_conversion(self):
        from repro.workloads import all_workloads

        config = ExecutionConfig(
            warp_sizes=(1, 2, 4), if_conversion=True
        )
        for workload in all_workloads():
            run = workload.run_on(config, scale=0.25, check=True)
            assert run.correct, workload.name
