"""Validator tests: structural errors the frontend must reject."""

import pytest

from repro.errors import PTXValidationError
from repro.ptx import parse, validate_module

HEADER = ".version 2.3\n.target sim\n"


def validate(source):
    validate_module(parse(HEADER + source))


class TestLabels:
    def test_branch_to_undefined_label(self):
        with pytest.raises(PTXValidationError) as excinfo:
            validate(
                ".entry k () {\n  .reg .pred %p<2>;\n"
                "  bra NOWHERE;\n}"
            )
        assert "undefined label" in str(excinfo.value)

    def test_duplicate_label(self):
        with pytest.raises(PTXValidationError):
            validate(".entry k () {\nL:\nL:\n  exit;\n}")


class TestTermination:
    def test_empty_body_rejected(self):
        with pytest.raises(PTXValidationError):
            validate(".entry k () {\n}")

    def test_fallthrough_end_rejected(self):
        with pytest.raises(PTXValidationError) as excinfo:
            validate(
                ".entry k () {\n  .reg .u32 %r<2>;\n"
                "  add.u32 %r0, %r1, 1;\n}"
            )
        assert "falls off the end" in str(excinfo.value)

    def test_trailing_label_rejected(self):
        with pytest.raises(PTXValidationError):
            validate(".entry k () {\n  exit;\nEND:\n}")

    def test_unconditional_branch_end_accepted(self):
        validate(".entry k () {\nL:\n  bra L;\n}")

    def test_guarded_branch_end_rejected(self):
        with pytest.raises(PTXValidationError):
            validate(
                ".entry k () {\n  .reg .pred %p<2>;\nL:\n"
                "  @%p0 bra L;\n}"
            )


class TestOperands:
    def test_arity_mismatch(self):
        with pytest.raises(PTXValidationError) as excinfo:
            validate(
                ".entry k () {\n  .reg .u32 %r<4>;\n"
                "  add.u32 %r0, %r1;\n  exit;\n}"
            )
        assert "expects 3 operands" in str(excinfo.value)

    def test_memory_without_space(self):
        with pytest.raises(Exception):
            validate(
                ".entry k () {\n  .reg .u32 %r<2>;\n"
                "  .reg .u64 %rd<2>;\n"
                "  ld.u32 %r0, [%rd0];\n  exit;\n}"
            )

    def test_undeclared_symbol(self):
        with pytest.raises(PTXValidationError) as excinfo:
            validate(
                ".entry k () {\n  .reg .u32 %r<2>;\n"
                "  ld.param.u32 %r0, [nope];\n  exit;\n}"
            )
        assert "undeclared symbol" in str(excinfo.value)

    def test_setp_destination_must_be_predicate(self):
        with pytest.raises(PTXValidationError):
            validate(
                ".entry k () {\n  .reg .u32 %r<4>;\n"
                "  setp.eq.u32 %r0, %r1, %r2;\n  exit;\n}"
            )

    def test_guard_must_be_predicate(self):
        # The parser itself rejects non-pred guards via register_type,
        # so construct through the builder path instead.
        from repro.ptx import (
            DataType,
            Kernel,
            Opcode,
            PTXInstruction,
            RegisterOperand,
        )
        from repro.ptx.module import RegisterDeclaration
        from repro.ptx.validator import validate_kernel

        kernel = Kernel("k")
        kernel.declare_registers(
            RegisterDeclaration(prefix="r0", dtype=DataType.u32)
        )
        kernel.append(
            PTXInstruction(
                opcode=Opcode.exit,
                guard=RegisterOperand("r0", DataType.u32),
            )
        )
        kernel.append(PTXInstruction(opcode=Opcode.exit))
        with pytest.raises(PTXValidationError):
            validate_kernel(kernel)

    def test_valid_kernel_passes(self, vecadd_module):
        validate_module(vecadd_module)

    def test_shared_symbol_reference_accepted(self):
        validate(
            ".entry k () {\n  .reg .u32 %r<4>;\n  .reg .f32 %f<2>;\n"
            "  .shared .f32 tile[8];\n"
            "  mov.u32 %r0, tile;\n"
            "  st.shared.f32 [tile+4], %f0;\n  exit;\n}"
        )
