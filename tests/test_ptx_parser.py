"""Parser unit tests: declarations, instructions, modifiers, operands."""

import pytest

from repro.errors import PTXSyntaxError
from repro.ptx import (
    AddressOperand,
    AddressSpace,
    AtomicOp,
    CompareOp,
    DataType,
    ImmediateOperand,
    Label,
    LabelOperand,
    MulMode,
    Opcode,
    RegisterOperand,
    SpecialRegisterOperand,
    SymbolOperand,
    VectorOperand,
    VoteMode,
    parse,
)


def parse_kernel_body(body, decls=".reg .u32 %r<10>;", params=""):
    source = f"""
.version 2.3
.target sim
.entry k ({params})
{{
  {decls}
  .reg .u64 %rd<10>;
  .reg .f32 %f<10>;
  .reg .pred %p<10>;
  {body}
  exit;
}}
"""
    return parse(source).kernel("k")


def first_instruction(body, **kw):
    return parse_kernel_body(body, **kw).instructions[0]


class TestModuleStructure:
    def test_version_and_target(self):
        module = parse(".version 2.3\n.target sim\n"
                       ".entry k () { exit; }")
        assert module.version == "2.3"
        assert module.target == "sim"

    def test_multiple_kernels(self):
        module = parse(
            ".version 2.3\n.target sim\n"
            ".entry a () { exit; }\n.entry b () { exit; }"
        )
        assert sorted(module.kernels) == ["a", "b"]

    def test_module_const_with_initializer(self):
        module = parse(
            ".version 2.3\n.target sim\n"
            ".const .f32 lut[3] = { 1.0, 2.0, 3.0 };\n"
            ".entry k () { exit; }"
        )
        variable = module.find_variable("lut")
        assert variable.count == 3
        assert variable.initializer == [1.0, 2.0, 3.0]

    def test_module_global_scalar(self):
        module = parse(
            ".version 2.3\n.target sim\n.global .u32 counter;\n"
            ".entry k () { exit; }"
        )
        assert module.find_variable("counter").space is (
            AddressSpace.global_
        )

    def test_visible_entry_accepted(self):
        module = parse(
            ".version 2.3\n.target sim\n.visible .entry k () { exit; }"
        )
        assert "k" in module.kernels


class TestDeclarations:
    def test_parameter_list(self):
        kernel = parse_kernel_body(
            "", params=".param .u64 a, .param .u32 n"
        )
        assert [p.name for p in kernel.parameters] == ["a", "n"]
        assert kernel.parameters[0].dtype is DataType.u64

    def test_parameter_offsets_aligned(self):
        kernel = parse_kernel_body(
            "", params=".param .u32 n, .param .u64 a"
        )
        # u64 after u32 aligns to 8 bytes
        assert kernel.parameters[1].offset == 8
        assert kernel.param_size == 16

    def test_array_parameter(self):
        kernel = parse_kernel_body("", params=".param .f32 taps[4]")
        assert kernel.parameters[0].count == 4
        assert kernel.param_size == 16

    def test_register_range_declaration(self):
        kernel = parse_kernel_body("")
        assert kernel.register_type("r0") is DataType.u32
        assert kernel.register_type("r9") is DataType.u32

    def test_single_register_declaration(self):
        kernel = parse_kernel_body("", decls=".reg .u32 %counter;")
        assert kernel.register_type("counter") is DataType.u32

    def test_shared_variable(self):
        kernel = parse_kernel_body(
            "", decls=".reg .u32 %r<4>;\n  .shared .f32 tile[64];"
        )
        variable = kernel.find_variable("tile")
        assert variable.space is AddressSpace.shared
        assert kernel.shared_size == 256

    def test_local_variable(self):
        kernel = parse_kernel_body(
            "", decls=".reg .u32 %r<4>;\n  .local .u32 scratch[8];"
        )
        assert kernel.local_size == 32


class TestInstructionSelection:
    def test_simple_add(self):
        inst = first_instruction("add.u32 %r1, %r2, %r3;")
        assert inst.opcode is Opcode.add
        assert inst.dtype is DataType.u32
        assert len(inst.operands) == 3

    def test_guard_positive(self):
        inst = first_instruction(
            "setp.eq.u32 %p1, %r1, %r2; @%p1 add.u32 %r1, %r1, 1;"
        )
        guarded = parse_kernel_body(
            "setp.eq.u32 %p1, %r1, %r2; @%p1 add.u32 %r1, %r1, 1;"
        ).instructions[1]
        assert guarded.guard.name == "p1"
        assert not guarded.guard.negated

    def test_guard_negated(self):
        kernel = parse_kernel_body(
            "setp.eq.u32 %p1, %r1, %r2; @!%p1 bra L;\nL:"
        )
        branch = kernel.instructions[1]
        assert branch.guard.negated

    def test_mad_lo(self):
        inst = first_instruction("mad.lo.u32 %r1, %r2, %r3, %r4;")
        assert inst.mul_mode is MulMode.lo

    def test_mul_wide(self):
        inst = first_instruction("mul.wide.u32 %rd1, %r1, 4;")
        assert inst.mul_mode is MulMode.wide

    def test_setp_compare(self):
        inst = first_instruction("setp.ge.u32 %p1, %r1, %r2;")
        assert inst.compare is CompareOp.ge
        assert inst.dtype is DataType.u32

    def test_cvt_two_types(self):
        inst = first_instruction("cvt.rn.f32.u32 %f1, %r1;")
        assert inst.dtype is DataType.f32
        assert inst.source_type is DataType.u32
        assert inst.rounding == "rn"

    def test_ld_param(self):
        inst = first_instruction(
            "ld.param.u64 %rd1, [a];", params=".param .u64 a"
        )
        assert inst.space is AddressSpace.param
        address = inst.operands[1]
        assert isinstance(address, AddressOperand)
        assert isinstance(address.base, SymbolOperand)

    def test_ld_global_with_offset(self):
        inst = first_instruction("ld.global.f32 %f1, [%rd1+8];")
        assert inst.operands[1].offset == 8

    def test_ld_global_negative_offset(self):
        inst = first_instruction("ld.global.f32 %f1, [%rd1+-4];")
        assert inst.operands[1].offset == -4

    def test_vector_load(self):
        inst = first_instruction(
            "ld.global.v2.f32 {%f1, %f2}, [%rd1];"
        )
        assert inst.vector_width == 2
        assert isinstance(inst.operands[0], VectorOperand)

    def test_atom_modifiers(self):
        inst = first_instruction(
            "atom.global.add.u32 %r1, [%rd1], 1;"
        )
        assert inst.opcode is Opcode.atom
        assert inst.atomic_op is AtomicOp.add
        assert inst.space is AddressSpace.global_

    def test_red_and_alias(self):
        inst = first_instruction("red.global.and.b32 [%rd1], %r1;")
        assert inst.atomic_op is AtomicOp.and_

    def test_vote_mode(self):
        inst = first_instruction("vote.any.pred %p1, %p2;")
        assert inst.vote_mode is VoteMode.any

    def test_bar_sync(self):
        inst = first_instruction("bar.sync 0;")
        assert inst.opcode is Opcode.bar

    def test_special_register_with_dimension(self):
        inst = first_instruction("mov.u32 %r1, %tid.x;")
        operand = inst.operands[1]
        assert isinstance(operand, SpecialRegisterOperand)
        assert (operand.register, operand.dimension) == ("tid", "x")

    def test_special_register_without_dimension(self):
        inst = first_instruction("mov.u32 %r1, %laneid;")
        assert inst.operands[1].register == "laneid"

    def test_branch_target_is_label(self):
        kernel = parse_kernel_body("bra L;\nL:")
        assert isinstance(
            kernel.instructions[0].operands[0], LabelOperand
        )

    def test_immediate_stamped_with_dtype(self):
        inst = first_instruction("add.f32 %f1, %f2, 1.5;")
        immediate = inst.operands[2]
        assert isinstance(immediate, ImmediateOperand)
        assert immediate.dtype is DataType.f32

    def test_and_or_not_aliases(self):
        kernel = parse_kernel_body(
            "and.b32 %r1, %r2, %r3; or.b32 %r1, %r2, %r3;"
            " not.b32 %r1, %r2;"
        )
        opcodes = [inst.opcode for inst in kernel.instructions[:3]]
        assert opcodes == [Opcode.and_, Opcode.or_, Opcode.not_]

    def test_selp(self):
        inst = first_instruction("selp.f32 %f1, %f2, %f3, %p1;")
        assert inst.opcode is Opcode.selp
        assert isinstance(inst.operands[3], RegisterOperand)

    def test_labels_interleaved(self):
        kernel = parse_kernel_body("bra L;\nL:\n  add.u32 %r1, %r2, %r3;")
        labels = [s for s in kernel.statements if isinstance(s, Label)]
        assert [label.name for label in labels] == ["L"]


class TestParseErrors:
    def test_unknown_opcode(self):
        with pytest.raises(PTXSyntaxError):
            parse_kernel_body("frobnicate.u32 %r1, %r2;")

    def test_undeclared_register(self):
        with pytest.raises(Exception):
            parse_kernel_body("add.u32 %zz1, %r2, %r3;")

    def test_missing_semicolon(self):
        with pytest.raises(PTXSyntaxError):
            parse_kernel_body("add.u32 %r1, %r2, %r3")

    def test_too_many_type_modifiers(self):
        with pytest.raises(PTXSyntaxError):
            parse_kernel_body("add.u32.u32.u32 %r1, %r2, %r3;")

    def test_unsupported_modifier(self):
        with pytest.raises(PTXSyntaxError):
            parse_kernel_body("add.banana %r1, %r2, %r3;")

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(Exception):
            parse(
                ".version 2.3\n.target sim\n"
                ".entry k () { exit; }\n.entry k () { exit; }"
            )


class TestRoundTrip:
    def test_kernel_str_reparses(self, vecadd_module):
        text = str(vecadd_module)
        reparsed = parse(text)
        original = vecadd_module.kernel("vecAdd")
        copy = reparsed.kernel("vecAdd")
        assert len(copy.instructions) == len(original.instructions)
        assert [str(i) for i in copy.instructions] == [
            str(i) for i in original.instructions
        ]
