"""CFG, dominance and liveness analysis tests."""

import pytest

from repro.ir import (
    BinaryOp,
    Branch,
    CondBranch,
    Constant,
    ControlFlowGraph,
    DominatorTree,
    Exit,
    IRFunction,
    LivenessInfo,
    UnaryOp,
    VirtualRegister,
    remove_unreachable_blocks,
)
from repro.ptx.types import DataType


def reg(name, dtype=DataType.u32):
    return VirtualRegister(name=name, dtype=dtype)


def mov(dst, value):
    return UnaryOp(
        op="mov", dtype=DataType.u32, dst=dst,
        a=Constant(value, DataType.u32),
    )


def diamond():
    """entry -> (left | right) -> join -> exit"""
    function = IRFunction("diamond")
    entry = function.add_block("entry")
    entry.append(mov(reg("p_src"), 1))
    entry.append(
        CondBranch(
            predicate=VirtualRegister("p", DataType.pred),
            taken="left",
            fallthrough="right",
        )
    )
    left = function.add_block("left")
    left.append(mov(reg("x"), 1))
    left.append(Branch("join"))
    right = function.add_block("right")
    right.append(mov(reg("x"), 2))
    right.append(Branch("join"))
    join = function.add_block("join")
    join.append(
        BinaryOp(
            op="add", dtype=DataType.u32, dst=reg("y"),
            a=reg("x"), b=Constant(1, DataType.u32),
        )
    )
    join.append(Exit())
    return function


def loop():
    """entry -> header <-> body; header -> exit"""
    function = IRFunction("loop")
    entry = function.add_block("entry")
    entry.append(mov(reg("i"), 0))
    entry.append(Branch("header"))
    header = function.add_block("header")
    header.append(
        CondBranch(
            predicate=VirtualRegister("p", DataType.pred),
            taken="body",
            fallthrough="done",
        )
    )
    body = function.add_block("body")
    body.append(
        BinaryOp(
            op="add", dtype=DataType.u32, dst=reg("i"),
            a=reg("i"), b=Constant(1, DataType.u32),
        )
    )
    body.append(Branch("header"))
    function.add_block("done").append(Exit())
    return function


class TestCFG:
    def test_diamond_edges(self):
        cfg = ControlFlowGraph(diamond())
        assert sorted(cfg.successors["entry"]) == ["left", "right"]
        assert sorted(cfg.predecessors["join"]) == ["left", "right"]

    def test_reachability(self):
        function = diamond()
        function.add_block("orphan").append(Exit())
        cfg = ControlFlowGraph(function)
        assert "orphan" not in cfg.reachable()

    def test_reverse_postorder_entry_first(self):
        order = ControlFlowGraph(diamond()).reverse_postorder()
        assert order[0] == "entry"
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_back_edges_in_loop(self):
        edges = ControlFlowGraph(loop()).back_edges()
        assert ("body", "header") in edges

    def test_no_back_edges_in_diamond(self):
        assert ControlFlowGraph(diamond()).back_edges() == []

    def test_remove_unreachable(self):
        function = diamond()
        function.add_block("orphan").append(Exit())
        removed = remove_unreachable_blocks(function)
        assert removed == 1
        assert "orphan" not in function.blocks

    def test_remove_keeps_entry_point_roots(self):
        function = diamond()
        island = function.add_block("island")
        island.append(Exit())
        function.add_entry_point("island")
        assert remove_unreachable_blocks(function) == 0


class TestDominance:
    def test_entry_dominates_all(self):
        tree = DominatorTree(diamond())
        for label in ("left", "right", "join"):
            assert tree.dominates("entry", label)

    def test_branches_do_not_dominate_join(self):
        tree = DominatorTree(diamond())
        assert not tree.dominates("left", "join")
        assert tree.immediate_dominator("join") == "entry"

    def test_loop_header_dominates_body(self):
        tree = DominatorTree(loop())
        assert tree.dominates("header", "body")
        assert tree.immediate_dominator("body") == "header"

    def test_dominance_frontier_of_branch_arms(self):
        frontier = DominatorTree(diamond()).dominance_frontier()
        assert frontier["left"] == {"join"}
        assert frontier["right"] == {"join"}

    def test_self_domination(self):
        tree = DominatorTree(diamond())
        assert tree.dominates("join", "join")


class TestLiveness:
    def test_value_live_across_diamond(self):
        liveness = LivenessInfo(diamond())
        assert "x" in liveness.live_in["join"]
        assert "x" in liveness.live_out["left"]

    def test_dead_after_last_use(self):
        liveness = LivenessInfo(diamond())
        assert "x" not in liveness.live_out["join"]

    def test_loop_carried_value_live_around_backedge(self):
        liveness = LivenessInfo(loop())
        assert "i" in liveness.live_in["header"]
        assert "i" in liveness.live_out["body"]

    def test_predicate_live_into_branch(self):
        liveness = LivenessInfo(diamond())
        assert "p" in liveness.live_in["entry"]

    def test_live_in_registers_sorted(self, reduce_scalar_ir):
        liveness = LivenessInfo(reduce_scalar_ir)
        for label in reduce_scalar_ir.blocks:
            names = [r.name for r in liveness.live_in_registers(label)]
            assert names == sorted(names)

    def test_max_live_counts_boundary_pressure(self, vecadd_scalar_ir):
        # Only the guard-computed global index survives the entry
        # block boundary in vecAdd.
        assert LivenessInfo(vecadd_scalar_ir).max_live() == 1

    def test_max_live_sees_loop_carried_state(self, reduce_scalar_ir):
        assert LivenessInfo(reduce_scalar_ir).max_live() >= 3
