"""Vectorization transform tests (Algorithms 1-4) and the uniformity
analysis feeding §6.2's thread-invariant elimination."""

import pytest

from repro.ir import (
    Broadcast,
    CondBranch,
    ContextRead,
    ContextWrite,
    ExtractElement,
    InsertElement,
    Load,
    Reduce,
    ResumeStatus,
    Store,
    Switch,
    VirtualRegister,
    Yield,
    verify_function,
)
from repro.frontend import translate_kernel
from repro.ptx import parse
from repro.transforms import (
    VectorizeOptions,
    analyze_uniformity,
    assign_spill_slots,
    compute_entry_points,
    vectorize_kernel,
)


def instructions_of(function, kind):
    return [i for i in function.instructions() if isinstance(i, kind)]


def vectorize(scalar, **kw):
    options = VectorizeOptions(**kw)
    function = vectorize_kernel(scalar, options)
    verify_function(function)
    return function


class TestEntryPoints:
    def test_entry_zero_is_function_entry(self, vecadd_scalar_ir):
        points = compute_entry_points(vecadd_scalar_ir)
        assert points[vecadd_scalar_ir.entry_label] == 0

    def test_branch_successors_registered(self, vecadd_scalar_ir):
        points = compute_entry_points(vecadd_scalar_ir)
        assert "DONE" in points
        assert "fall_1" in points

    def test_numbering_consistent_across_specializations(
        self, reduce_scalar_ir
    ):
        narrow = vectorize(reduce_scalar_ir, warp_size=2)
        wide = vectorize(reduce_scalar_ir, warp_size=4)
        scalar_points = compute_entry_points(reduce_scalar_ir)
        for label, entry_id in scalar_points.items():
            # both specializations expose the same entry IDs
            assert entry_id in narrow.entry_points
            assert entry_id in wide.entry_points
            # and their handlers lead to the same source block
            if entry_id != 0:
                assert narrow.entry_points[entry_id].startswith(label)
                assert wide.entry_points[entry_id].startswith(label)

    def test_barrier_successor_registered(self, reduce_scalar_ir):
        points = compute_entry_points(reduce_scalar_ir)
        barrier_successors = [
            label for label in points if label.startswith("post_barrier")
        ]
        assert barrier_successors


class TestSpillSlots:
    def test_slots_aligned_to_size(self, vecadd_scalar_ir):
        slots, size = assign_spill_slots(vecadd_scalar_ir)
        for name, offset in slots.items():
            register = next(
                r for r in vecadd_scalar_ir.registers()
                if r.name == name
            )
            assert offset % register.dtype.size == 0
        assert size > 0

    def test_slots_deterministic(self, vecadd_scalar_ir):
        first, _ = assign_spill_slots(vecadd_scalar_ir)
        second, _ = assign_spill_slots(vecadd_scalar_ir)
        assert first == second

    def test_slots_do_not_overlap(self, vecadd_scalar_ir):
        slots, size = assign_spill_slots(vecadd_scalar_ir)
        registers = {r.name: r for r in vecadd_scalar_ir.registers()}
        intervals = sorted(
            (offset, offset + registers[name].dtype.size)
            for name, offset in slots.items()
        )
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert end <= start


class TestAlgorithm1:
    def test_arithmetic_promoted_to_vector(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        adds = [
            i for i in function.instructions()
            if getattr(i, "op", None) == "add"
            and getattr(i, "dst", None) is not None
            and i.dst.width == 4
        ]
        assert adds

    def test_loads_replicated_per_lane(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        global_loads = [
            i for i in instructions_of(function, Load)
            if i.space.value == "global"
        ]
        lanes = {load.lane for load in global_loads}
        assert lanes == {0, 1, 2, 3}

    def test_packing_instructions_emitted(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        assert instructions_of(function, InsertElement)
        assert instructions_of(function, ExtractElement)

    def test_ws1_has_no_packing(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=1)
        assert not instructions_of(function, InsertElement)
        assert not instructions_of(function, ExtractElement)

    def test_context_reads_per_lane(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=2)
        tid_reads = [
            i for i in instructions_of(function, ContextRead)
            if i.field_name == "tid.x"
        ]
        assert {read.lane for read in tid_reads} == {0, 1}


class TestAlgorithm2:
    def test_divergence_check_inserted(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        sums = [
            i for i in instructions_of(function, Reduce)
            if i.op == "add"
        ]
        assert sums
        switches = instructions_of(function, Switch)
        # cases 0 and ws with the exit handler as default
        switch = switches[-1]
        assert set(switch.cases) == {0, 4}

    def test_exit_handler_spills_and_yields(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        exit_blocks = [
            b for b in function.ordered_blocks()
            if "_exit" in b.label
        ]
        assert exit_blocks
        handler = exit_blocks[0]
        spills = [
            i for i in handler.instructions
            if isinstance(i, Store) and i.space.value == "local"
        ]
        writes = [
            i for i in handler.instructions
            if isinstance(i, ContextWrite)
        ]
        assert len(writes) == 4  # one resume point per lane
        assert isinstance(handler.terminator, Yield)
        assert handler.terminator.status == ResumeStatus.THREAD_BRANCH

    def test_barrier_becomes_barrier_yield(self, reduce_scalar_ir):
        function = vectorize(reduce_scalar_ir, warp_size=4)
        yields = instructions_of(function, Yield)
        assert any(
            y.status == ResumeStatus.THREAD_BARRIER for y in yields
        )

    def test_exit_becomes_exit_yield(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        yields = instructions_of(function, Yield)
        assert any(
            y.status == ResumeStatus.THREAD_EXIT for y in yields
        )

    def test_ws1_keeps_plain_branches(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=1)
        assert instructions_of(function, CondBranch)

    def test_yield_at_branches_policy(self, vecadd_scalar_ir):
        function = vectorize(
            vecadd_scalar_ir, warp_size=1, yield_at_branches=True
        )
        # no direct conditional branches survive; all yield
        assert not instructions_of(function, CondBranch)
        yields = instructions_of(function, Yield)
        assert any(
            y.status == ResumeStatus.THREAD_BRANCH for y in yields
        )


class TestAlgorithm3:
    def test_scheduler_is_entry_block(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        assert function.entry_label.startswith("scheduler")
        scheduler = function.entry_block
        assert isinstance(scheduler.terminator, Switch)

    def test_scheduler_reads_resume_point(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        reads = [
            i for i in function.entry_block.instructions
            if isinstance(i, ContextRead)
        ]
        assert reads[0].field_name == "resume_point"

    def test_entry_handlers_restore_live_ins(self, reduce_scalar_ir):
        function = vectorize(reduce_scalar_ir, warp_size=4)
        handler_labels = [
            label
            for entry_id, label in function.entry_points.items()
            if entry_id != 0
        ]
        assert handler_labels
        restores_seen = False
        for label in handler_labels:
            block = function.blocks[label]
            loads = [
                i for i in block.instructions
                if isinstance(i, Load) and i.space.value == "local"
            ]
            if loads:
                restores_seen = True
        assert restores_seen

    def test_restore_counts_recorded(self, reduce_scalar_ir):
        function = vectorize(reduce_scalar_ir, warp_size=4)
        assert function.restore_counts[0] == 0
        assert any(
            count > 0 for count in function.restore_counts.values()
        )


class TestOverheadMarking:
    def test_handler_instructions_flagged(self, reduce_scalar_ir):
        function = vectorize(reduce_scalar_ir, warp_size=4)
        scheduler = function.entry_block
        assert all(
            getattr(i, "overhead", False)
            for i in scheduler.all_instructions()
        )

    def test_kernel_body_not_flagged(self, vecadd_scalar_ir):
        function = vectorize(vecadd_scalar_ir, warp_size=4)
        body_flags = [
            getattr(i, "overhead", False)
            for i in function.blocks["fall_1"].instructions
        ]
        assert not any(body_flags)


class TestUniformity:
    def test_tid_is_variant(self, vecadd_scalar_ir):
        info = analyze_uniformity(vecadd_scalar_ir)
        assert "r1" not in info.uniform_registers  # tid.x

    def test_ntid_is_uniform(self, vecadd_scalar_ir):
        info = analyze_uniformity(vecadd_scalar_ir)
        assert "r2" in info.uniform_registers  # ntid.x

    def test_param_load_is_uniform(self, vecadd_scalar_ir):
        info = analyze_uniformity(vecadd_scalar_ir)
        assert "r5" in info.uniform_registers  # n

    def test_ctaid_uniform_only_with_static_warps(
        self, vecadd_scalar_ir
    ):
        dynamic = analyze_uniformity(
            vecadd_scalar_ir, static_warps=False
        )
        static = analyze_uniformity(vecadd_scalar_ir, static_warps=True)
        assert "r3" not in dynamic.uniform_registers
        assert "r3" in static.uniform_registers

    def test_values_behind_divergent_branch_are_variant(
        self, vecadd_scalar_ir
    ):
        info = analyze_uniformity(vecadd_scalar_ir, static_warps=True)
        # rd2 is a param load (uniform data) but defined in fall_1,
        # which is a divergent-branch successor.
        assert "fall_1" not in info.pre_divergence_blocks
        assert "rd2" not in info.uniform_registers

    def test_loop_back_into_early_blocks_taints(self):
        source = """
.version 2.3
.target sim
.entry k (.param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .pred %p<4>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [n];
TOP:
  add.u32 %r3, %r2, 1;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra TOP;
  exit;
}
"""
        scalar = translate_kernel(parse(source).kernel("k"))
        info = analyze_uniformity(scalar)
        # TOP is reachable from the variant branch -> tainted, so r3
        # (defined there) cannot be proven uniform.
        assert "TOP" not in info.pre_divergence_blocks
        assert "r3" not in info.uniform_registers


class TestThreadInvariantElimination:
    def test_uniform_registers_stay_scalar(self, vecadd_scalar_ir):
        function = vectorize(
            vecadd_scalar_ir,
            warp_size=4,
            static_warps=True,
            thread_invariant_elimination=True,
        )
        registers = {r.name: r for r in function.registers()}
        assert registers["r2"].width == 1  # ntid
        assert registers["r4"].width == 4  # global id

    def test_tie_reduces_instruction_count(self, vecadd_scalar_ir):
        plain = vectorize(vecadd_scalar_ir, warp_size=4)
        tie = vectorize(
            vecadd_scalar_ir,
            warp_size=4,
            static_warps=True,
            thread_invariant_elimination=True,
        )
        assert tie.instruction_count() < plain.instruction_count()

    def test_affine_tid_rewrite(self, vecadd_scalar_ir):
        function = vectorize(
            vecadd_scalar_ir,
            warp_size=4,
            static_warps=True,
            thread_invariant_elimination=True,
        )
        tid_reads = [
            i for i in instructions_of(function, ContextRead)
            if i.field_name == "tid.x"
        ]
        # only lane 0 reads tid.x; lanes 1-3 are computed as +1/+2/+3
        assert len(tid_reads) == 1
        assert tid_reads[0].lane == 0

    def test_uniform_branch_stays_conditional(self):
        source = """
.version 2.3
.target sim
.entry k (.param .u64 out, .param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, 0;
  ld.param.u32 %r2, [n];
LOOP:
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra LOOP;
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r1;
  exit;
}
"""
        scalar = translate_kernel(parse(source).kernel("k"))
        function = vectorize(
            scalar,
            warp_size=4,
            static_warps=True,
            thread_invariant_elimination=True,
        )
        # the loop predicate is uniform -> plain CondBranch, no
        # reduce/switch divergence check
        assert instructions_of(function, CondBranch)


class TestBroadcast:
    def test_vote_broadcasts_to_lanes(self):
        source = """
.version 2.3
.target sim
.entry k (.param .u64 out)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<2>;
  .reg .pred %p<4>;
  mov.u32 %r1, %tid.x;
  setp.lt.u32 %p1, %r1, 2;
  vote.any.pred %p2, %p1;
  selp.u32 %r2, 1, 0, %p2;
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r2;
  exit;
}
"""
        scalar = translate_kernel(parse(source).kernel("k"))
        function = vectorize(scalar, warp_size=4)
        assert instructions_of(function, Broadcast)


class TestAffineVectorMemory:
    """The §4 future-work optimization: affine analysis + vector
    loads/stores."""

    def _vectorize_vmem(self, scalar):
        return vectorize(
            scalar,
            warp_size=4,
            static_warps=True,
            thread_invariant_elimination=True,
            vector_memory=True,
        )

    def test_affine_strides_on_vecadd(self, vecadd_scalar_ir):
        from repro.transforms import analyze_affine, analyze_uniformity

        uniformity = analyze_uniformity(
            vecadd_scalar_ir, static_warps=True
        )
        strides = analyze_affine(vecadd_scalar_ir, uniformity)
        assert strides["r1"] == 1  # tid.x
        assert strides["r4"] == 1  # global id
        assert strides["rd1"] == 4  # byte offset (gid * 4)
        assert strides["rd3"] == 4  # load address
        assert strides["r2"] == 0  # ntid is stride 0

    def test_contiguous_loads_become_vector_loads(
        self, vecadd_scalar_ir
    ):
        from repro.ir import VectorLoad, VectorStore

        function = self._vectorize_vmem(vecadd_scalar_ir)
        vloads = instructions_of(function, VectorLoad)
        vstores = instructions_of(function, VectorStore)
        # both input streams and the output stream are contiguous
        assert len(vloads) == 2
        assert len(vstores) == 1
        # no replicated global accesses remain
        replicated_global = [
            i for i in instructions_of(function, Load)
            if i.space.value == "global"
        ]
        assert not replicated_global

    def test_disabled_without_static_warps(self, vecadd_scalar_ir):
        from repro.ir import VectorLoad

        function = vectorize(
            vecadd_scalar_ir, warp_size=4, vector_memory=True
        )
        assert not instructions_of(function, VectorLoad)

    def test_non_contiguous_stays_replicated(self):
        # stride 8 (gid * 8) != element size 4 -> no vector load
        source = """
.version 2.3
.target sim
.entry gather (.param .u64 in, .param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<2>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 8;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mul.wide.u32 %rd4, %r1, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f1;
  exit;
}
"""
        from repro.ir import VectorLoad, VectorStore

        scalar = translate_kernel(parse(source).kernel("gather"))
        function = self._vectorize_vmem(scalar)
        assert not instructions_of(function, VectorLoad)
        # the store is still contiguous
        assert instructions_of(function, VectorStore)

    def test_end_to_end_correct(self, vecadd_scalar_ir):
        import numpy as np

        from repro import Device, static_tie_config
        from tests.conftest import VECADD_PTX

        device = Device(
            config=static_tie_config(4, vector_memory=True)
        )
        device.register_module(VECADD_PTX)
        rng = np.random.default_rng(11)
        n = 300
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        a_buffer = device.upload(a)
        b_buffer = device.upload(b)
        c_buffer = device.malloc(n * 4)
        device.launch(
            "vecAdd", grid=(4, 1, 1), block=(128, 1, 1),
            args=[a_buffer, b_buffer, c_buffer, n],
        )
        assert np.allclose(c_buffer.read(np.float32, n), a + b)
