"""Tokenizer unit tests."""

import pytest

from repro.errors import PTXSyntaxError
from repro.ptx.lexer import Token, TokenKind, TokenStream, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_directive(self):
        (token,) = tokenize(".version")[:-1]
        assert token.kind is TokenKind.DIRECTIVE
        assert token.value == "version"

    def test_register(self):
        (token,) = tokenize("%r1")[:-1]
        assert token.kind is TokenKind.REGISTER
        assert token.value == "r1"

    def test_identifier(self):
        (token,) = tokenize("vecAdd")[:-1]
        assert token.kind is TokenKind.IDENT

    def test_punct_stream(self):
        assert values("{ } [ ] ( ) , ; : @ ! < >") == list(
            "{}[](),;:@!<>"
        )

    def test_opcode_with_modifiers_splits(self):
        tokens = tokenize("add.f32")[:-1]
        assert [t.kind for t in tokens] == [
            TokenKind.IDENT,
            TokenKind.DIRECTIVE,
        ]

    def test_eof_terminates(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestNumbers:
    def test_decimal_integer(self):
        assert values("42") == [42]

    def test_negative_integer(self):
        assert values("-7") == [-7]

    def test_hex_integer(self):
        assert values("0x1F") == [31]

    def test_unsigned_suffix(self):
        assert values("42U") == [42]

    def test_float_simple(self):
        assert values("1.5") == [1.5]

    def test_float_exponent(self):
        assert values("2.5e3") == [2500.0]

    def test_float_no_leading_digit(self):
        assert values(".5") == [0.5]

    def test_float_f_suffix(self):
        assert values("1.0f") == [1.0]

    def test_hex_float32(self):
        # 0x3F800000 is 1.0f
        assert values("0f3F800000") == [1.0]

    def test_hex_float64(self):
        # 0x3FF0000000000000 is 1.0
        assert values("0d3FF0000000000000") == [1.0]

    def test_signed_offset_folds_sign(self):
        tokens = tokenize("[%rd1+4]")[:-1]
        assert tokens[-2].kind is TokenKind.INTEGER
        assert tokens[-2].value == 4


class TestCommentsAndLines:
    def test_line_comment_skipped(self):
        assert values("add // comment\nsub") == ["add", "sub"]

    def test_block_comment_skipped(self):
        assert values("add /* x\ny */ sub") == ["add", "sub"]

    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb\n\nc")[:-1]
        assert [t.line for t in tokens] == [1, 2, 4]

    def test_column_tracked(self):
        tokens = tokenize("  add")[:-1]
        assert tokens[0].column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(PTXSyntaxError) as excinfo:
            tokenize("add `")
        assert "line 1" in str(excinfo.value)

    def test_error_carries_line(self):
        with pytest.raises(PTXSyntaxError) as excinfo:
            tokenize("ok\nok\n ~")
        assert excinfo.value.line == 3


class TestTokenStream:
    def test_accept_returns_none_on_mismatch(self):
        stream = TokenStream(tokenize("add"))
        assert stream.accept(TokenKind.DIRECTIVE) is None
        assert stream.accept(TokenKind.IDENT).text == "add"

    def test_expect_raises_with_location(self):
        stream = TokenStream(tokenize("add"))
        with pytest.raises(PTXSyntaxError):
            stream.expect(TokenKind.PUNCT, ";")

    def test_peek_does_not_advance(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().text == "b"
        assert stream.current.text == "a"

    def test_advance_stops_at_eof(self):
        stream = TokenStream(tokenize("a"))
        stream.advance()
        eof = stream.advance()
        assert eof.kind is TokenKind.EOF
        assert stream.advance().kind is TokenKind.EOF
