"""Closure-specialized lowering and runtime correctness regressions.

The interpreter's closure mode (the lowering fast path) must be a pure
host-side optimization: every *modeled* statistic has to stay
bit-identical to the legacy dict-dispatch interpreter. These tests pin
that A/B equivalence on divergent, barrier-heavy and %clock-reading
workloads, plus the satellite fixes that rode along (static warp
formation, arena free validation, spill-layout caching, ready-pool
fairness, warp-size specialization selection).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import Device, ExecutionConfig, vectorized_config
from repro.errors import MemoryFault
from repro.machine.interpreter import INTERPRETER_MODES
from repro.machine.memory import MemorySystem
from repro.runtime import ThreadContext
from repro.runtime.config import static_tie_config
from repro.runtime.execution_manager import ExecutionManager, _ReadyPool
from repro.workloads.registry import get_workload
from tests.conftest import VECADD_PTX


# ---------------------------------------------------------------------------
# A/B: closure lowering vs dict dispatch — bit-identical statistics
# ---------------------------------------------------------------------------


def _modeled_statistics(statistics) -> dict:
    """Every modeled quantity the paper reports. Host wall-clock is
    deliberately absent — it is the one thing allowed to differ."""
    return {
        "kernel_cycles": statistics.kernel_cycles,
        "yield_cycles": statistics.yield_cycles,
        "em_cycles": statistics.em_cycles,
        "instructions": statistics.instructions,
        "flops": statistics.flops,
        "warp_size_histogram": dict(statistics.warp_size_histogram),
        "yields_by_status": dict(statistics.yields_by_status),
        "thread_entries": statistics.thread_entries,
        "values_restored": statistics.values_restored,
        "warp_executions": statistics.warp_executions,
        "threads_launched": statistics.threads_launched,
    }


class TestInterpreterModeEquivalence:
    # BitonicSort: data-dependent branching (divergent); Reduction:
    # bar.sync tree (barrier-heavy); Clock: reads %clock, so every
    # block runs in precise accounting mode.
    @pytest.mark.parametrize(
        "name", ["BitonicSort", "Reduction", "Clock"]
    )
    def test_modes_bit_identical(self, name):
        workload = get_workload(name)
        observed = {}
        for mode in INTERPRETER_MODES:
            config = replace(
                vectorized_config(4), interpreter_mode=mode
            )
            run = workload.run_on(config, scale=0.25)
            assert run.correct, f"{name} incorrect under {mode}"
            observed[mode] = _modeled_statistics(run.statistics)
        assert observed["closure"] == observed["dispatch"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(interpreter_mode="jit")

    def test_mode_absent_from_cache_key(self):
        # Both modes execute the same specialization artifacts, so the
        # persistent cache must be shared between them.
        base = vectorized_config(4)
        other = replace(base, interpreter_mode="dispatch")
        assert base.cache_key() == other.cache_key()

    def test_dispatch_mode_end_to_end(self, rng):
        config = replace(
            vectorized_config(4), interpreter_mode="dispatch"
        )
        device = Device(config=config)
        device.register_module(VECADD_PTX)
        n = 64
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        c = device.malloc(n * 4)
        device.launch(
            "vecAdd", grid=(1, 1, 1), block=(64, 1, 1),
            args=[device.upload(a), device.upload(b), c, n],
        )
        np.testing.assert_array_equal(
            device.memcpy_dtoh(c, np.float32, n), a + b
        )


# ---------------------------------------------------------------------------
# Satellite: static warp formation forms the full aligned window
# ---------------------------------------------------------------------------


def _context(x: int, y: int = 0, cta=(0, 0, 0)) -> ThreadContext:
    return ThreadContext(
        tid=(x, y, 0),
        ntid=(8, 2, 1),
        ctaid=cta,
        nctaid=(1, 1, 1),
        shared_base=0,
        local_base=0,
        resume_point=0,
    )


class TestStaticFormation:
    def _manager(self) -> ExecutionManager:
        device = Device(config=static_tie_config(4))
        return ExecutionManager(
            worker_id=0,
            machine=device.machine,
            memory=device.memory,
            interpreter=device.interpreter,
            cache=device.cache,
            config=device.config,
        )

    def test_scrambled_pool_forms_full_warp(self):
        # After divergent re-entry the pool order is arbitrary. A
        # mid-window anchor (tid.x=2 first) must still produce the
        # full run [0, 1, 2, 3], not just [2, 3].
        manager = self._manager()
        ready = _ReadyPool()
        for x in (2, 0, 1, 3):
            ready.push(_context(x))
        members = manager._form_static(ready, limit=4)
        assert [m.tid[0] for m in members] == [0, 1, 2, 3]
        assert ready.size == 0

    def test_run_starts_at_lowest_present_thread(self):
        # Window [4, 8) with threads {5, 6, 7}: the run is [5, 6, 7]
        # even though the window base 4 is absent.
        manager = self._manager()
        ready = _ReadyPool()
        for x in (6, 7, 5):
            ready.push(_context(x))
        members = manager._form_static(ready, limit=4)
        # warp_sizes (1, 2, 4): a 3-thread run executes as width 2.
        assert [m.tid[0] for m in members] == [5, 6]
        assert ready.size == 1

    def test_gap_splits_the_run(self):
        manager = self._manager()
        ready = _ReadyPool()
        for x in (0, 1, 3):
            ready.push(_context(x))
        members = manager._form_static(ready, limit=4)
        assert [m.tid[0] for m in members] == [0, 1]
        assert ready.size == 1  # tid.x=3 went back to the pool


# ---------------------------------------------------------------------------
# Satellite: arena free validation
# ---------------------------------------------------------------------------


class TestMemoryFree:
    def test_free_beyond_break_rejected(self):
        memory = MemorySystem()
        base = memory.allocate(64)
        with pytest.raises(MemoryFault):
            memory.free(base, 128)

    def test_double_free_rejected(self):
        memory = MemorySystem()
        first = memory.allocate(64)
        memory.allocate(64)  # keep `first` below the break
        memory.free(first, 64)
        with pytest.raises(MemoryFault):
            memory.free(first, 64)

    def test_overlapping_free_rejected(self):
        memory = MemorySystem()
        first = memory.allocate(64)
        memory.allocate(64)
        memory.free(first, 32)
        with pytest.raises(MemoryFault):
            memory.free(first + 16, 32)

    def test_top_of_arena_free_recedes_break(self):
        memory = MemorySystem()
        start = memory.bytes_allocated
        base = memory.allocate(64)
        memory.free(base, 64)
        assert memory.bytes_allocated == start

    def test_align_padding_is_not_leaked(self):
        # allocate(10) leaves the break unaligned; the next aligned
        # allocation's padding must stay reclaimable so that freeing
        # everything returns the break to its starting point.
        memory = MemorySystem()
        start = memory.bytes_allocated
        first = memory.allocate(10)
        second = memory.allocate(16)
        assert second % 16 == 0
        memory.free(second, 16)
        memory.free(first, 10)
        assert memory.bytes_allocated == start

    def test_padding_is_reusable(self):
        memory = MemorySystem()
        first = memory.allocate(10)
        memory.allocate(16)
        # The 6 padding bytes between the two live in the free list.
        padding = memory.allocate(4, align=1)
        assert first + 10 <= padding < first + 16


# ---------------------------------------------------------------------------
# Satellite: spill layout computed once per kernel
# ---------------------------------------------------------------------------


class TestSpillLayoutCache:
    def test_computed_once_and_dropped_on_invalidate(self, monkeypatch):
        from repro.runtime import translation_cache as module

        device = Device()
        device.register_module(VECADD_PTX)
        calls = []
        original = module.assign_spill_slots
        monkeypatch.setattr(
            module,
            "assign_spill_slots",
            lambda ir: calls.append(ir) or original(ir),
        )
        first = device.cache.spill_layout("vecAdd")
        second = device.cache.spill_layout("vecAdd")
        assert first == second
        assert len(calls) == 1
        device.cache.invalidate("vecAdd")
        third = device.cache.spill_layout("vecAdd")
        assert third == first
        assert len(calls) == 2

    def test_layout_shape(self):
        device = Device()
        device.register_module(VECADD_PTX)
        slots, total = device.cache.spill_layout("vecAdd")
        assert isinstance(slots, dict)
        assert isinstance(total, int)
        assert total >= 0


# ---------------------------------------------------------------------------
# Satellite: ready-pool round-robin fairness
# ---------------------------------------------------------------------------


class TestReadyPoolFairness:
    def test_entry_points_drain_in_rotation(self):
        pool = _ReadyPool(cross_cta=True)
        for entry in (0, 5, 9):
            for x in range(4):
                context = _context(x)
                context.resume_point = entry
                pool.push(context)
        seen = []
        while pool:
            group = pool.pop_group(2)
            seen.append(group[0].resume_point)
        # Three keys, two threads per pop: strict rotation.
        assert seen == [0, 5, 9, 0, 5, 9]

    def test_pushed_back_extras_do_not_starve_other_keys(self):
        pool = _ReadyPool(cross_cta=True)
        for x in range(8):
            context = _context(x)
            context.resume_point = 0
            pool.push(context)
        straggler = _context(0)
        straggler.resume_point = 7
        pool.push(straggler)
        first = pool.pop_group(4)
        assert {c.resume_point for c in first} == {0}
        for extra in first[2:]:  # the warp former returns leftovers
            pool.push(extra)
        second = pool.pop_group(4)
        assert {c.resume_point for c in second} == {7}


# ---------------------------------------------------------------------------
# Satellite: specialization selection below every compiled width
# ---------------------------------------------------------------------------


class TestSpecializationSelection:
    def test_group_smaller_than_every_vector_width(self):
        # warp_sizes (1, 4): a 3-thread ready group fits no vector
        # specialization, so formation must fall back to scalar.
        device = Device(config=ExecutionConfig(warp_sizes=(1, 4)))
        assert device.cache.specialization_for(3) == 1
        assert device.cache.specialization_for(4) == 4
        assert device.cache.specialization_for(5) == 4

    def test_sub_width_cta_executes_scalar(self, rng):
        device = Device(config=ExecutionConfig(warp_sizes=(1, 4)))
        device.register_module(VECADD_PTX)
        n = 6  # two CTAs of 3 threads: below the only vector width
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        c = device.malloc(n * 4)
        result = device.launch(
            "vecAdd", grid=(2, 1, 1), block=(3, 1, 1),
            args=[device.upload(a), device.upload(b), c, n],
        )
        assert set(result.statistics.warp_size_histogram) == {1}
        np.testing.assert_array_equal(
            device.memcpy_dtoh(c, np.float32, n), a + b
        )
