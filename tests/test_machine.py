"""Machine layer tests: memory, descriptor, cost model, interpreter."""

import numpy as np
import pytest

from repro.errors import ExecutionError, MemoryFault
from repro.ir import (
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    Constant,
    Convert,
    Exit,
    FusedMultiplyAdd,
    Intrinsic,
    IRFunction,
    Load,
    Select,
    Store,
    Switch,
    UnaryOp,
    VirtualRegister,
    Yield,
)
from repro.machine import (
    Interpreter,
    MemorySystem,
    avx_machine,
    build_cost_table,
    knights_ferry,
    sandybridge,
    vector_register_pressure,
)
from repro.ptx.types import AddressSpace, DataType
from repro.runtime.context import ThreadContext, Warp


def reg(name, dtype=DataType.u32, width=1):
    return VirtualRegister(name=name, dtype=dtype, width=width)


def const(value, dtype=DataType.u32):
    return Constant(value, dtype)


def make_context(tid=0, local_base=0, shared_base=0):
    return ThreadContext(
        tid=(tid, 0, 0),
        ntid=(32, 1, 1),
        ctaid=(0, 0, 0),
        nctaid=(1, 1, 1),
        shared_base=shared_base,
        local_base=local_base,
    )


class TestMemorySystem:
    def test_roundtrip_all_dtypes(self):
        memory = MemorySystem(1 << 16)
        cases = [
            (DataType.u8, 200),
            (DataType.s8, -100),
            (DataType.u16, 60000),
            (DataType.s32, -123456),
            (DataType.u32, 0xDEADBEEF),
            (DataType.u64, 1 << 60),
            (DataType.f32, 1.5),
            (DataType.f64, -2.25),
            (DataType.pred, True),
        ]
        for dtype, value in cases:
            address = memory.allocate(16)
            memory.store(dtype, address, value)
            loaded = memory.load(dtype, address)
            assert loaded == value, dtype

    def test_unaligned_access(self):
        memory = MemorySystem(1 << 12)
        base = memory.allocate(16)
        memory.store(DataType.f32, base + 1, 3.25)
        assert memory.load(DataType.f32, base + 1) == np.float32(3.25)

    def test_null_page_faults(self):
        memory = MemorySystem(1 << 12)
        with pytest.raises(MemoryFault):
            memory.load(DataType.u32, 0)

    def test_out_of_bounds_faults(self):
        memory = MemorySystem(1 << 12)
        with pytest.raises(MemoryFault):
            memory.load(DataType.u32, (1 << 12) - 2)

    def test_arena_exhaustion(self):
        memory = MemorySystem(1 << 10)
        with pytest.raises(MemoryFault):
            memory.allocate(1 << 11)

    def test_allocation_alignment(self):
        memory = MemorySystem(1 << 12)
        memory.allocate(3)
        aligned = memory.allocate(8, align=16)
        assert aligned % 16 == 0

    def test_array_roundtrip(self):
        memory = MemorySystem(1 << 16)
        data = np.arange(100, dtype=np.float32)
        address = memory.allocate(data.nbytes)
        memory.write_array(address, data)
        assert np.array_equal(
            memory.read_array(address, np.float32, 100), data
        )

    def test_reset_clears(self):
        memory = MemorySystem(1 << 12)
        address = memory.allocate(4)
        memory.store(DataType.u32, address, 7)
        memory.reset()
        fresh = memory.allocate(4)
        assert memory.load(DataType.u32, fresh) == 0

    def test_access_counters(self):
        memory = MemorySystem(1 << 12)
        address = memory.allocate(4)
        memory.store(DataType.u32, address, 1)
        memory.load(DataType.u32, address)
        assert memory.store_count == 1
        assert memory.load_count == 1


class TestDescriptor:
    def test_sandybridge_peak_matches_paper(self):
        machine = sandybridge()
        assert machine.peak_vector_gflops == pytest.approx(108.8)
        assert machine.peak_scalar_gflops == pytest.approx(27.2)

    def test_vector_chunks(self):
        machine = sandybridge()
        assert machine.vector_chunks(1) == 1
        assert machine.vector_chunks(4) == 1
        assert machine.vector_chunks(8) == 2
        assert machine.vector_chunks(5) == 2

    def test_avx_machine_is_8_wide(self):
        assert avx_machine().vector_width == 8

    def test_knights_ferry_is_16_wide_manycore(self):
        machine = knights_ferry()
        assert machine.vector_width == 16
        assert machine.cores == 32


class TestCostModel:
    def _simple_function(self, width):
        function = IRFunction("f", warp_size=width)
        block = function.add_block("entry")
        block.append(
            FusedMultiplyAdd(
                dtype=DataType.f32,
                dst=reg("acc", DataType.f32, width),
                a=reg("acc", DataType.f32, width),
                b=const(2.0, DataType.f32),
                c=const(1.0, DataType.f32),
            )
        )
        block.append(Exit())
        return function

    def test_vector_fma_costs_one_chunk(self):
        machine = sandybridge()
        function = self._simple_function(4)
        table = build_cost_table(function, machine)
        fma = function.blocks["entry"].instructions[0]
        assert table.cost_of(fma).cycles == 1
        assert table.cost_of(fma).flops == 8

    def test_wide_fma_costs_two_chunks(self):
        machine = sandybridge()
        function = self._simple_function(8)
        table = build_cost_table(function, machine)
        fma = function.blocks["entry"].instructions[0]
        # 2 chunks; no spill penalty (pressure is low here)
        assert table.cost_of(fma).cycles == 2

    def test_register_pressure_penalty(self):
        machine = sandybridge()
        function = IRFunction("f", warp_size=8)
        entry = function.add_block("entry")
        registers = [
            reg(f"acc{i}", DataType.f32, 8) for i in range(12)
        ]
        for register in registers:
            entry.append(
                FusedMultiplyAdd(
                    dtype=DataType.f32, dst=register, a=register,
                    b=const(1.0, DataType.f32),
                    c=const(0.5, DataType.f32),
                )
            )
        entry.append(Branch("again"))
        again = function.add_block("again")
        for register in registers:
            again.append(
                FusedMultiplyAdd(
                    dtype=DataType.f32, dst=register, a=register,
                    b=const(1.0, DataType.f32),
                    c=const(0.5, DataType.f32),
                )
            )
        again.append(Exit())
        pressure = vector_register_pressure(function, machine)
        assert pressure == 24  # 12 regs x 2 chunks
        table = build_cost_table(function, machine)
        assert table.spilling
        fma = function.blocks["entry"].instructions[0]
        # base 2 chunks + spill penalty 2 * 2 chunks
        assert table.cost_of(fma).cycles == 6

    def test_memory_op_cost(self):
        machine = sandybridge()
        function = IRFunction("f")
        block = function.add_block("entry")
        block.append(
            Load(
                dtype=DataType.f32,
                dst=reg("x", DataType.f32),
                space=AddressSpace.global_,
                base=const(0x100, DataType.u64),
            )
        )
        block.append(Exit())
        table = build_cost_table(function, machine)
        load = function.blocks["entry"].instructions[0]
        assert table.cost_of(load).cycles == machine.memory_cost


class TestInterpreter:
    def _run(self, build, width=1, contexts=None, memory=None):
        """Build a function with `build(function, block)`, execute one
        warp, return (state registers via out-stores, memory)."""
        machine = sandybridge()
        memory = memory or MemorySystem(1 << 16)
        interpreter = Interpreter(machine, memory)
        function = IRFunction("t", warp_size=width)
        block = function.add_block("entry")
        build(function, block)
        if not block.is_terminated:
            block.append(Yield(status=3))
        executable = interpreter.load_function(function)
        contexts = contexts or [make_context(i) for i in range(width)]
        warp = Warp(contexts=contexts)
        status = interpreter.execute(executable, warp, param_base=0)
        return status, memory

    def test_store_load_roundtrip(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="add", dtype=DataType.u32, dst=reg("a"),
                         a=const(40), b=const(2))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 42

    def test_integer_wraparound(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="add", dtype=DataType.u32, dst=reg("a"),
                         a=const(0xFFFFFFFF), b=const(2))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 1

    def test_signed_division_truncates(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="div", dtype=DataType.s32,
                         dst=reg("a", DataType.s32),
                         a=const(-7, DataType.s32),
                         b=const(2, DataType.s32))
            )
            block.append(
                Store(dtype=DataType.s32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.s32, out) == -3  # trunc, not floor

    def test_division_by_zero_yields_zero(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="div", dtype=DataType.u32, dst=reg("a"),
                         a=const(7), b=const(0))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 0

    def test_mulhi(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="mulhi", dtype=DataType.u32, dst=reg("a"),
                         a=const(0x80000000), b=const(4))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 2

    def test_shift_clamps_count(self):
        # PTX shift semantics: amounts >= the operand width clamp (the
        # result drains to 0 / the sign fill), they do not wrap mod N.
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                BinaryOp(op="shl", dtype=DataType.u32, dst=reg("a"),
                         a=const(1), b=const(33))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 0

    def test_convert_rounding_modes(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(16)
        modes = [("rzi", 1), ("rni", 2), ("rmi", 1), ("rpi", 2)]

        def build(function, block):
            for index, (mode, _) in enumerate(modes):
                target = reg(f"i{index}", DataType.s32)
                block.append(
                    Convert(dst_type=DataType.s32,
                            src_type=DataType.f32,
                            dst=target,
                            src=const(1.5, DataType.f32),
                            rounding=mode)
                )
                block.append(
                    Store(dtype=DataType.s32,
                          space=AddressSpace.global_,
                          base=const(out + 4 * index, DataType.u64),
                          value=target)
                )

        self._run(build, memory=memory)
        for index, (_, expected) in enumerate(modes):
            assert memory.load(DataType.s32, out + 4 * index) == expected

    def test_bit_reinterpretation_across_types(self):
        # max.s32 on a u32 register holding a "negative" pattern
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                        a=const(0xFFFFFFFE))  # -2 as s32
            )
            block.append(
                BinaryOp(op="max", dtype=DataType.s32, dst=reg("y"),
                         a=reg("x"), b=const(0, DataType.s32))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("y"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 0

    def test_intrinsics(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(8)

        def build(function, block):
            block.append(
                Intrinsic(name="sqrt", dtype=DataType.f32,
                          dst=reg("a", DataType.f32),
                          args=[const(9.0, DataType.f32)])
            )
            block.append(
                Intrinsic(name="ex2", dtype=DataType.f32,
                          dst=reg("b", DataType.f32),
                          args=[const(3.0, DataType.f32)])
            )
            block.append(
                Store(dtype=DataType.f32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("a"))
            )
            block.append(
                Store(dtype=DataType.f32, space=AddressSpace.global_,
                      base=const(out + 4, DataType.u64),
                      value=reg("b"))
            )

        self._run(build, memory=memory)
        assert memory.load(DataType.f32, out) == 3.0
        assert memory.load(DataType.f32, out + 4) == 8.0

    def test_per_lane_local_addressing(self):
        memory = MemorySystem(1 << 16)
        local0 = memory.allocate(16)
        local1 = memory.allocate(16)
        contexts = [
            make_context(0, local_base=local0),
            make_context(1, local_base=local1),
        ]

        def build(function, block):
            for lane in range(2):
                block.append(
                    Store(dtype=DataType.u32,
                          space=AddressSpace.local,
                          base=const(0, DataType.u64),
                          value=const(100 + lane), lane=lane)
                )

        self._run(build, width=2, contexts=contexts, memory=memory)
        assert memory.load(DataType.u32, local0) == 100
        assert memory.load(DataType.u32, local1) == 101

    def test_warp_size_mismatch_rejected(self):
        machine = sandybridge()
        memory = MemorySystem(1 << 12)
        interpreter = Interpreter(machine, memory)
        function = IRFunction("t", warp_size=4)
        function.add_block("entry").append(Yield(status=3))
        executable = interpreter.load_function(function)
        warp = Warp(contexts=[make_context(0)])
        with pytest.raises(ExecutionError):
            interpreter.execute(executable, warp, param_base=0)

    def test_infinite_loop_detected(self):
        machine = sandybridge()
        memory = MemorySystem(1 << 12)
        interpreter = Interpreter(machine, memory, instruction_limit=100)
        function = IRFunction("t", warp_size=1)
        function.add_block("entry").append(Branch("entry"))
        executable = interpreter.load_function(function)
        warp = Warp(contexts=[make_context(0)])
        with pytest.raises(ExecutionError) as excinfo:
            interpreter.execute(executable, warp, param_base=0)
        assert "instruction limit" in str(excinfo.value)

    def test_switch_dispatch(self):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(function, block):
            block.append(
                UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                        a=const(2))
            )
            block.append(
                Switch(value=reg("x"), cases={1: "one", 2: "two"},
                       default="other")
            )
            for label, value in (("one", 1), ("two", 2), ("other", 9)):
                target = function.add_block(label)
                target.append(
                    Store(dtype=DataType.u32,
                          space=AddressSpace.global_,
                          base=const(out, DataType.u64),
                          value=const(value))
                )
                target.append(Yield(status=3))

        self._run(build, memory=memory)
        assert memory.load(DataType.u32, out) == 2

    def test_stats_accumulate_cycles_and_flops(self):
        from repro.machine import ExecutionStats

        machine = sandybridge()
        memory = MemorySystem(1 << 12)
        interpreter = Interpreter(machine, memory)
        function = IRFunction("t", warp_size=1)
        block = function.add_block("entry")
        block.append(
            FusedMultiplyAdd(
                dtype=DataType.f32, dst=reg("a", DataType.f32),
                a=const(1.0, DataType.f32),
                b=const(2.0, DataType.f32),
                c=const(3.0, DataType.f32),
            )
        )
        block.append(Yield(status=3))
        executable = interpreter.load_function(function)
        stats = ExecutionStats()
        interpreter.execute(
            executable, Warp(contexts=[make_context(0)]), 0, stats
        )
        assert stats.flops == 2
        assert stats.kernel_cycles > 0
