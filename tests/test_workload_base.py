"""Workload infrastructure tests: WorkloadRun aggregation, grid math,
deterministic inputs, failure signalling."""

import numpy as np
import pytest

from repro import Device, baseline_config
from repro.runtime.launcher import LaunchResult
from repro.runtime.execution_manager import LaunchGeometry
from repro.runtime.statistics import LaunchStatistics
from repro.workloads import Category, Workload, WorkloadRun, grid_for
from repro.workloads.registry import get_workload


class TestGridFor:
    def test_exact(self):
        assert grid_for(128, 64) == 2

    def test_rounds_up(self):
        assert grid_for(129, 64) == 3

    def test_single(self):
        assert grid_for(1, 64) == 1


class TestWorkloadRun:
    def _launch(self, kernel_cycles, worker_cycles):
        statistics = LaunchStatistics(kernel_cycles=kernel_cycles)
        statistics.worker_cycles = worker_cycles
        return LaunchResult(
            kernel_name="k",
            geometry=LaunchGeometry(grid=(1, 1, 1), block=(1, 1, 1)),
            statistics=statistics,
            clock_hz=1e9,
        )

    def test_elapsed_sums_sequential_launches(self):
        run = WorkloadRun(
            workload="w",
            launches=[
                self._launch(10, {0: 100}),
                self._launch(20, {0: 50, 1: 70}),
            ],
        )
        assert run.elapsed_cycles == 170
        assert run.elapsed_seconds(1e9) == pytest.approx(170e-9)

    def test_statistics_merge_worker_cycles(self):
        run = WorkloadRun(
            workload="w",
            launches=[
                self._launch(10, {0: 100, 1: 40}),
                self._launch(20, {0: 60, 1: 90}),
            ],
        )
        merged = run.statistics
        assert merged.worker_cycles == {0: 160, 1: 130}
        assert merged.kernel_cycles == 30


class TestWorkloadContract:
    def test_rng_is_deterministic(self):
        workload = get_workload("BlackScholes")
        first = workload.rng().integers(0, 1000, 8)
        second = workload.rng().integers(0, 1000, 8)
        assert np.array_equal(first, second)

    def test_same_results_across_runs(self):
        workload = get_workload("Template")
        first = workload.run_on(baseline_config(), scale=0.25)
        second = workload.run_on(baseline_config(), scale=0.25)
        assert (
            first.statistics.total_cycles
            == second.statistics.total_cycles
        )

    def test_incorrect_result_raises(self):
        class Broken(Workload):
            name = "broken"
            category = Category.MICRO

            def module_source(self):
                return (
                    ".version 2.3\n.target sim\n"
                    ".entry nop () { exit; }"
                )

            def execute(self, device, scale=1.0, check=True):
                result = device.launch(
                    "nop", grid=1, block=1, args=[]
                )
                return self._finish(
                    [result], correct=False, check=check,
                    notes="intentional",
                )

        workload = Broken()
        device = Device(config=baseline_config())
        workload.prepare(device)
        with pytest.raises(AssertionError):
            workload.execute(device)
        # check=False suppresses verification
        run = workload.execute(device, check=False)
        assert not run.checked

    def test_descriptions_present(self):
        from repro.workloads import all_workloads

        for workload in all_workloads():
            assert workload.description, workload.name
            assert workload.category, workload.name
