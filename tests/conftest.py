"""Shared fixtures: canonical kernels, devices, configs — plus the
suite-hygiene machinery (REPRO_* environment isolation and the
REPRO_TEST_SHUFFLE randomized collection order)."""

from __future__ import annotations

import os
import random

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _repro_env_guard():
    """Snapshot and restore every ``REPRO_*`` environment variable
    around each test: the runtime reads REPRO_BACKEND / REPRO_CACHE /
    REPRO_SANITIZE / REPRO_MELD at Device construction, so a test that
    leaks one silently reconfigures every later Device in the run."""
    saved = {
        key: value
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
    }
    yield
    for key in [k for k in os.environ if k.startswith("REPRO_")]:
        if key not in saved:
            del os.environ[key]
    os.environ.update(saved)


def pytest_collection_modifyitems(config, items):
    """``REPRO_TEST_SHUFFLE=<seed>`` randomizes test order to flush
    out order-dependence, without extra plugins. Each module's items
    stay contiguous (several modules use module-scoped device/server
    fixtures whose lifetime assumes that), but module order and the
    order within each module are shuffled deterministically."""
    seed = os.environ.get("REPRO_TEST_SHUFFLE", "").strip()
    if not seed:
        return
    rng = random.Random(seed)
    modules: dict = {}
    for item in items:
        modules.setdefault(item.module.__name__, []).append(item)
    module_order = list(modules)
    rng.shuffle(module_order)
    shuffled = []
    for name in module_order:
        group = modules[name]
        rng.shuffle(group)
        shuffled.extend(group)
    items[:] = shuffled

from repro import (
    Device,
    ExecutionConfig,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from repro.frontend import translate_kernel
from repro.ptx import parse

#: Guarded element-wise add: one potential divergence site (the bounds
#: guard), no barriers. The canonical kernel for most unit tests.
VECADD_PTX = r"""
.version 2.3
.target sim
.entry vecAdd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.u64 %rd4, [b];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd6, [c];
  add.u64 %rd7, %rd6, %rd1;
  st.global.f32 [%rd7], %f3;
DONE:
  exit;
}
"""

#: Data-dependent loop (Collatz step counts): sustained divergence.
COLLATZ_PTX = r"""
.version 2.3
.target sim
.entry collatz (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  mov.u32 %r7, 0;
LOOP:
  setp.le.u32 %p2, %r6, 1;
  @%p2 bra EXITLOOP;
  and.b32 %r8, %r6, 1;
  setp.eq.u32 %p3, %r8, 0;
  @%p3 bra EVEN;
  mul.lo.u32 %r6, %r6, 3;
  add.u32 %r6, %r6, 1;
  bra NEXT;
EVEN:
  shr.u32 %r6, %r6, 1;
NEXT:
  add.u32 %r7, %r7, 1;
  bra LOOP;
EXITLOOP:
  ld.param.u64 %rd4, [dst];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r7;
DONE:
  exit;
}
"""

#: Shared-memory tree reduction: barriers + shrinking active set.
REDUCE_PTX = r"""
.version 2.3
.target sim
.entry reduceK (.param .u64 src, .param .u64 dst)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;
  .shared .f32 sdata[64];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.u32 %r5, sdata;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  st.shared.f32 [%r7], %f1;
  bar.sync 0;
  mov.u32 %r8, 32;
RLOOP:
  setp.ge.u32 %p1, %r1, %r8;
  @%p1 bra SKIP;
  shl.b32 %r9, %r8, 2;
  add.u32 %r10, %r7, %r9;
  ld.shared.f32 %f2, [%r7];
  ld.shared.f32 %f3, [%r10];
  add.f32 %f2, %f2, %f3;
  st.shared.f32 [%r7], %f2;
SKIP:
  bar.sync 0;
  shr.u32 %r8, %r8, 1;
  setp.gt.u32 %p2, %r8, 0;
  @%p2 bra RLOOP;
  setp.ne.u32 %p3, %r1, 0;
  @%p3 bra DONE;
  ld.shared.f32 %f2, [%r5];
  ld.param.u64 %rd4, [dst];
  mul.wide.u32 %rd5, %r3, 4;
  add.u64 %rd6, %rd4, %rd5;
  st.global.f32 [%rd6], %f2;
DONE:
  exit;
}
"""


def collatz_steps(value: int) -> int:
    steps = 0
    while value > 1:
        value = 3 * value + 1 if value % 2 else value // 2
        steps += 1
    return steps


@pytest.fixture
def vecadd_module():
    return parse(VECADD_PTX)


@pytest.fixture
def vecadd_scalar_ir(vecadd_module):
    return translate_kernel(vecadd_module.kernel("vecAdd"))


@pytest.fixture
def reduce_scalar_ir():
    return translate_kernel(parse(REDUCE_PTX).kernel("reduceK"))


@pytest.fixture(
    params=["baseline", "vectorized", "static-tie"],
    ids=["baseline", "vec4", "static-tie"],
)
def any_config(request) -> ExecutionConfig:
    return {
        "baseline": baseline_config(),
        "vectorized": vectorized_config(4),
        "static-tie": static_tie_config(4),
    }[request.param]


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
