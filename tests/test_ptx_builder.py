"""KernelBuilder tests: programmatically built kernels must be
equivalent to parsed ones and executable end-to-end."""

import numpy as np
import pytest

from repro import Device, vectorized_config
from repro.errors import PTXValidationError
from repro.ptx import (
    AddressSpace,
    AtomicOp,
    CompareOp,
    DataType,
    KernelBuilder,
    Module,
    validate_kernel,
)


def build_saxpy():
    """y[i] = a*x[i] + y[i] for i < n, via the builder API."""
    b = KernelBuilder("saxpy")
    b.param("x", DataType.u64)
    b.param("y", DataType.u64)
    b.param("a", DataType.f32)
    b.param("n", DataType.u32)

    tid = b.special(DataType.u32, "tid", "x")
    ntid = b.special(DataType.u32, "ntid", "x")
    ctaid = b.special(DataType.u32, "ctaid", "x")
    gid = b.mad(DataType.u32, ctaid, ntid, tid)
    n = b.load_param(DataType.u32, "n")
    oob = b.setp(CompareOp.ge, DataType.u32, gid, n)
    b.branch("DONE", predicate=oob)
    offset = b.cvt(DataType.u64, DataType.u32, gid)
    offset4 = b.mul(DataType.u64, offset, 4)
    x_ptr = b.load_param(DataType.u64, "x")
    x_addr = b.add(DataType.u64, x_ptr, offset4)
    x = b.load(AddressSpace.global_, DataType.f32, x_addr)
    y_ptr = b.load_param(DataType.u64, "y")
    y_addr = b.add(DataType.u64, y_ptr, offset4)
    y = b.load(AddressSpace.global_, DataType.f32, y_addr)
    a = b.load_param(DataType.f32, "a")
    result = b.fma(DataType.f32, a, x, y)
    b.store(AddressSpace.global_, DataType.f32, y_addr, result)
    b.label("DONE")
    b.exit()
    return b.kernel


class TestBuilderConstruction:
    def test_registers_are_unique(self):
        b = KernelBuilder("k")
        r1 = b.reg(DataType.u32)
        r2 = b.reg(DataType.u32)
        assert r1.name != r2.name

    def test_param_layout(self):
        kernel = build_saxpy()
        offsets = [p.offset for p in kernel.parameters]
        assert offsets == [0, 8, 16, 20]

    def test_validates(self):
        validate_kernel(build_saxpy())

    def test_mul_wide_widens_destination(self):
        from repro.ptx.instructions import MulMode

        b = KernelBuilder("k")
        r = b.reg(DataType.u32)
        wide = b.mul(DataType.u32, r, 4, mode=MulMode.wide)
        assert wide.dtype is DataType.u64

    def test_shared_declaration(self):
        b = KernelBuilder("k")
        b.shared("tile", DataType.f32, 64)
        assert b.kernel.shared_size == 256

    def test_guarded_context_manager(self):
        b = KernelBuilder("k")
        pred = b.reg(DataType.pred)
        with b.guarded(pred):
            inst = b.emit_probe = b.add(DataType.u32, 1, 2)
        guarded = b.kernel.instructions[-1]
        assert guarded.guard is pred
        b.add(DataType.u32, 1, 2)
        assert b.kernel.instructions[-1].guard is None

    def test_atom_helper(self):
        b = KernelBuilder("k")
        address = b.reg(DataType.u64)
        old = b.atom(
            AddressSpace.global_, AtomicOp.add, DataType.u32, address, 1
        )
        assert old.dtype is DataType.u32

    def test_duplicate_param_rejected(self):
        b = KernelBuilder("k")
        b.param("n", DataType.u32)
        with pytest.raises(PTXValidationError):
            b.param("n", DataType.u32)

    def test_vote_helper_types(self):
        from repro.ptx.instructions import VoteMode

        b = KernelBuilder("k")
        pred = b.reg(DataType.pred)
        assert b.vote(VoteMode.any, pred).dtype is DataType.pred
        assert b.vote(VoteMode.ballot, pred).dtype is DataType.b32


class TestBuilderExecution:
    @pytest.mark.parametrize("n", [100, 256])
    def test_saxpy_runs_correctly(self, n, any_config, rng):
        module = Module("built")
        module.add_kernel(build_saxpy())
        device = Device(config=any_config)
        device.register_module(module)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        x_buffer = device.upload(x)
        y_buffer = device.upload(y)
        device.launch(
            "saxpy",
            grid=(-(-n // 64), 1, 1),
            block=(64, 1, 1),
            args=[x_buffer, y_buffer, 2.5, n],
        )
        got = y_buffer.read(np.float32, n)
        expected = np.float32(2.5) * x + y
        assert np.allclose(got, expected, rtol=1e-5)

    def test_builder_kernel_round_trips_through_text(self):
        from repro.ptx import parse

        module = Module("built")
        module.add_kernel(build_saxpy())
        reparsed = parse(str(module))
        assert len(reparsed.kernel("saxpy").instructions) == len(
            build_saxpy().instructions
        )
