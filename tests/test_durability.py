"""Durable tenant sessions: operation journaling, incremental
checkpoints (StateStore), transparent restore after DeviceLost,
torn/corrupt-checkpoint fallback, restore-crash retry, the liveness/
readiness health split, and ServeClient idempotent-request retry."""

import os
import threading
import time

import numpy as np
import pytest

from repro.errors import DeviceLost, LaunchError
from repro.runtime.pool import DevicePool
from repro.runtime.service import KernelServer, ServeClient
from repro.runtime.state_store import StateStore
from repro.testing.fault_injection import FaultInjector
from tests.conftest import VECADD_PTX

N = 8

PRIVATE_PTX = VECADD_PTX.replace("vecAdd", "durAdd")


def _buffers(session):
    a = session.upload(np.arange(N, dtype=np.float32))
    b = session.upload(np.ones(N, dtype=np.float32))
    c = session.malloc(4 * N)
    return a, b, c


def _vecadd(session, a, b, c, kernel="vecAdd"):
    return session.launch(kernel, (1, 1, 1), (N, 1, 1), [a, b, c, N])


def _expected():
    return np.arange(N, dtype=np.float32) + 1


def _wait_recovered(pool, index=0, epoch=1, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = pool.health()[index]
        if (
            health.alive
            and health.epoch >= epoch
            and health.state == "closed"
        ):
            return health
        time.sleep(0.02)
    return pool.health()[index]


class TestStateStore:
    def test_roundtrip_and_verification(self, tmp_path):
        store = StateStore(directory=str(tmp_path))
        data = np.arange(N, dtype=np.float32).tobytes()
        seq = store.store_checkpoint(
            "alice", 7,
            [{"local": 1, "size": len(data), "label": "a",
              "data": data}],
        )
        assert seq == 1
        loaded = store.load_latest("alice")
        assert loaded is not None
        assert loaded.journal_index == 7
        assert loaded.allocations[0]["data"] == data
        assert loaded.allocations[0]["local"] == 1
        assert store.journal_floor("alice") == 7

    def test_content_addressed_blocks_dedupe(self, tmp_path):
        store = StateStore(directory=str(tmp_path))
        data = b"\x01" * 64
        for index in range(2):
            store.store_checkpoint(
                "bob", index,
                [{"local": 1, "size": 64, "label": None, "data": data},
                 {"local": 2, "size": 64, "label": None, "data": data}],
            )
        blocks = [
            name
            for name in os.listdir(store.tenant_directory("bob"))
            if name.endswith(".blk")
        ]
        # Two checkpoints x two allocations, all the same content:
        # exactly one block on disk.
        assert len(blocks) == 1

    def test_torn_manifest_discarded_falls_back(self, tmp_path):
        store = StateStore(directory=str(tmp_path))
        store.store_checkpoint(
            "carol", 1,
            [{"local": 1, "size": 4, "label": None, "data": b"good"}],
        )
        seq = store.store_checkpoint(
            "carol", 9,
            [{"local": 1, "size": 4, "label": None, "data": b"newr"}],
        )
        path = store.manifest_path("carol", seq)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        loaded = store.load_latest("carol")
        assert loaded is not None and loaded.journal_index == 1
        assert loaded.allocations[0]["data"] == b"good"
        assert store.discarded >= 1
        # The torn manifest no longer constrains (or provides) the
        # truncation floor.
        assert store.journal_floor("carol") == 1

    def test_corrupt_block_discards_checkpoint(self, tmp_path):
        store = StateStore(directory=str(tmp_path))
        store.store_checkpoint(
            "dave", 3,
            [{"local": 1, "size": 8, "label": None,
              "data": b"payloadX"}],
        )
        directory = store.tenant_directory("dave")
        for name in os.listdir(directory):
            if name.endswith(".blk"):
                with open(os.path.join(directory, name), "r+b") as f:
                    f.write(b"\xff\xff")
        assert store.load_latest("dave") is None
        assert store.discarded >= 1

    def test_prune_keeps_latest_and_gcs_blocks(self, tmp_path):
        store = StateStore(directory=str(tmp_path), keep=2)
        for index in range(4):
            store.store_checkpoint(
                "erin", index,
                [{"local": 1, "size": 4, "label": None,
                  "data": bytes([index]) * 4}],
            )
        assert store.sequences("erin") == [3, 4]
        blocks = [
            name
            for name in os.listdir(store.tenant_directory("erin"))
            if name.endswith(".blk")
        ]
        # Only the two retained checkpoints' (distinct) blocks remain.
        assert len(blocks) == 2
        assert store.journal_floor("erin") == 2

    def test_disk_failure_degrades_to_none(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        store = StateStore(directory=str(target / "sub"))
        seq = store.store_checkpoint(
            "fred", 0,
            [{"local": 1, "size": 1, "label": None, "data": b"x"}],
        )
        assert seq is None
        assert store.disk_errors == 1
        assert store.load_latest("fred") is None


class TestModuleJournalDedupe:
    def test_register_journal_is_per_unique_module(self):
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            worker = pool._workers[0]
            assert len(worker.journal) == 1
            session = pool.session("dedupe")
            session.register_module(VECADD_PTX)
            session.register_module(VECADD_PTX)
            assert len(worker.journal) == 1
            session.register_module(PRIVATE_PTX)
            session.register_module(PRIVATE_PTX)
            assert len(worker.journal) == 2


class TestJournalRestore:
    @pytest.mark.parametrize("durability", ["journal", "checkpoint"])
    def test_kill_then_bit_identical_reads(self, durability, tmp_path):
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("victim", durability=durability)
            a, b, c = _buffers(session)
            _vecadd(session, a, b, c)
            before = session.read(c, np.float32, N)
            pool._workers[0].process.kill()
            # The very next read must restore transparently and give
            # back the pre-kill bytes through the original handles.
            after = session.read(c, np.float32, N)
            assert np.array_equal(after, before)
            assert np.array_equal(after, _expected())
            assert session.stats.restores == 1
            assert session.stats.restore_seconds > 0.0
            health = _wait_recovered(pool)
            assert health.restores == 1
            assert health.last_restore_seconds is not None
            # The restored tenant keeps working.
            _vecadd(session, a, b, c)
            assert np.array_equal(
                session.read(c, np.float32, N), _expected()
            )

    def test_inflight_launches_redispatch_with_restored_flag(self):
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("victim", durability="journal")
            a, b, c = _buffers(session)
            with FaultInjector(pool, seed=0) as injector:
                injector.arm(
                    "kill_worker", probability=1.0, worker=0,
                    op="launch", kernel="vecAdd",
                )
                futures = [
                    session.launch_async(
                        "vecAdd", (1, 1, 1), (N, 1, 1), [a, b, c, N]
                    )
                    for _ in range(4)
                ]
                while not injector.fired.get("kill_worker"):
                    time.sleep(0.005)
                injector.restore()
                results = [f.result(timeout=300.0) for f in futures]
            assert any(result.restored for result in results)
            assert session.stats.restored_launches >= 1
            assert session.stats.device_lost == 0
            assert np.array_equal(
                session.read(c, np.float32, N), _expected()
            )

    def test_co_tenant_on_other_worker_unaffected(self):
        with DevicePool(workers=2, modules=[VECADD_PTX]) as pool:
            pool.ready(timeout=300.0)
            victim = pool.session(
                "victim", durability="journal", worker=0
            )
            bystander = pool.session("bystander", worker=1)
            va, vb, vc = _buffers(victim)
            ba, bb, bc = _buffers(bystander)
            _vecadd(bystander, ba, bb, bc)
            pool._workers[0].process.kill()
            assert np.array_equal(
                victim.read(vc, np.float32, N),
                np.zeros(N, dtype=np.float32),
            )
            # The bystander's worker never died: same epoch, no
            # restore, handles still hot.
            _vecadd(bystander, ba, bb, bc)
            assert np.array_equal(
                bystander.read(bc, np.float32, N), _expected()
            )
            assert bystander.stats.restores == 0
            assert pool.health()[1].epoch == 0

    def test_free_is_journaled(self):
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("freer", durability="journal")
            a, b, c = _buffers(session)
            session.free(b)
            with pytest.raises(LaunchError, match="freed"):
                _vecadd(session, a, b, c)
            pool._workers[0].process.kill()
            # Restore replays the free too: the handle stays dead.
            assert np.array_equal(
                session.read(a, np.float32, N),
                np.arange(N, dtype=np.float32),
            )
            with pytest.raises(LaunchError, match="freed"):
                session.read(b, np.float32, N)

    def test_durability_none_keeps_fail_fast_epochs(self):
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("plain")  # durability="none"
            a, b, c = _buffers(session)
            assert not session._durable
            pool._workers[0].process.kill()
            _wait_recovered(pool)
            # Pre-kill allocations are stale: fail fast, no restore.
            with pytest.raises((LaunchError, DeviceLost)):
                _vecadd(session, a, b, c)
            assert session.stats.restores == 0


class TestCheckpointRestore:
    def test_checkpoint_plus_journal_tail_replay(self, tmp_path):
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "ckpt", durability="checkpoint",
                checkpoint_interval=1000,
            )
            a, b, c = _buffers(session)
            _vecadd(session, a, b, c)
            assert session.checkpoint() is not None
            # Ops after the checkpoint live only in the journal tail.
            d = session.upload(np.full(N, 5.0, dtype=np.float32))
            _vecadd(session, a, d, c)
            pool._workers[0].process.kill()
            out = session.read(c, np.float32, N)
            assert np.array_equal(
                out, np.arange(N, dtype=np.float32) + 5
            )
            assert session.stats.restores == 1
            # The tail (upload + launch) was replayed, not
            # re-materialized from the snapshot.
            assert session.stats.replayed_ops >= 2
            assert session.stats.checkpoints >= 1
            assert session.stats.checkpoint_bytes > 0

    def test_auto_checkpoint_fires_on_interval(self, tmp_path):
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "auto", durability="checkpoint", checkpoint_interval=2
            )
            a, b, c = _buffers(session)
            for _ in range(4):
                _vecadd(session, a, b, c)
            deadline = time.monotonic() + 30.0
            while (
                session.stats.checkpoints < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert session.stats.checkpoints >= 2
            store = pool._state_store
            assert store is not None and store.stored >= 2

    def test_journal_mode_needs_no_store(self):
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            session = pool.session("nj", durability="journal")
            assert pool._state_store is None
            with pytest.raises(LaunchError, match="checkpoint"):
                session.checkpoint()

    @pytest.mark.parametrize(
        "site", ["torn_checkpoint", "corrupt_checkpoint"]
    )
    def test_damaged_checkpoint_falls_back(self, site, tmp_path):
        """A torn/corrupt newest checkpoint is never loaded: restore
        falls back to the previous one plus a longer journal replay
        and still converges to identical guest memory."""
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "fallback", durability="checkpoint",
                checkpoint_interval=1000,
            )
            a, b, c = _buffers(session)
            _vecadd(session, a, b, c)
            assert session.checkpoint() is not None  # good snapshot
            d = session.upload(np.full(N, 9.0, dtype=np.float32))
            _vecadd(session, a, d, c)
            with FaultInjector(pool, seed=0) as injector:
                injector.arm(site, probability=1.0)
                assert session.checkpoint() is not None  # damaged
            store = pool._state_store
            pool._workers[0].process.kill()
            out = session.read(c, np.float32, N)
            assert np.array_equal(
                out, np.arange(N, dtype=np.float32) + 9
            )
            assert session.stats.restores == 1
            assert session.stats.restore_failures == 0
            # The damaged newest snapshot was rejected on checksum...
            assert store.discarded >= 1
            # ...and the fallback needed the journal tail again.
            assert session.stats.replayed_ops >= 2

    def test_kill_during_restore_retries_to_convergence(
        self, tmp_path
    ):
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "twice", durability="checkpoint",
                checkpoint_interval=1000,
            )
            a, b, c = _buffers(session)
            _vecadd(session, a, b, c)
            assert session.checkpoint() is not None
            with FaultInjector(pool, seed=0) as injector:
                injector.arm(
                    "kill_during_restore", probability=1.0,
                    worker=0, after_steps=1, times=1,
                )
                pool._workers[0].process.kill()
                out = session.read(c, np.float32, N)
                assert injector.fired.get("kill_during_restore") == 1
            assert np.array_equal(out, _expected())
            # Two respawns: the original kill and the mid-restore one.
            health = _wait_recovered(pool, epoch=2)
            assert health.respawns >= 2
            assert session.stats.restores == 1
            assert session.stats.restore_failures == 0

    def test_restore_races_concurrent_co_tenant_launch(self):
        """A co-tenant on the SAME worker keeps submitting while the
        victim's restore runs: both must converge with correct
        numerics and no surfaced DeviceLost."""
        with DevicePool(workers=1, modules=[VECADD_PTX]) as pool:
            pool.ready(timeout=300.0)
            victim = pool.session(
                "racer-victim", durability="journal", worker=0
            )
            rival = pool.session(
                "racer-rival", durability="journal", worker=0
            )
            va, vb, vc = _buffers(victim)
            ra, rb, rc = _buffers(rival)
            failures = []

            def hammer():
                try:
                    for _ in range(6):
                        _vecadd(rival, ra, rb, rc)
                except Exception as error:  # pragma: no cover
                    failures.append(error)

            thread = threading.Thread(target=hammer)
            thread.start()
            pool._workers[0].process.kill()
            out = victim.read(vc, np.float32, N)
            thread.join(timeout=300.0)
            assert not thread.is_alive()
            assert not failures, failures
            assert np.array_equal(
                out, np.zeros(N, dtype=np.float32)
            )
            assert np.array_equal(
                rival.read(rc, np.float32, N), _expected()
            )
            assert victim.stats.restores == 1
            assert rival.stats.restores == 1

    def test_restore_under_sanitized_workers(
        self, tmp_path, monkeypatch
    ):
        """Restored allocations get fresh redzones/shadow state: the
        replayed tenant stays sanitizer-clean after restore."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "sanitized", durability="checkpoint",
                checkpoint_interval=1000,
            )
            a, b, c = _buffers(session)
            _vecadd(session, a, b, c)
            assert session.checkpoint() is not None
            pool._workers[0].process.kill()
            assert np.array_equal(
                session.read(c, np.float32, N), _expected()
            )
            # Launching on the restored (checked) arena still works
            # and stays finding-free.
            result = _vecadd(session, a, b, c)
            assert not result.statistics.sanitizer
            assert session.stats.restores == 1


class TestServeDurability:
    @pytest.fixture()
    def server(self, tmp_path):
        pool = DevicePool(
            workers=1, modules=[VECADD_PTX],
            state_dir=str(tmp_path),
        )
        pool.ready(timeout=300.0)
        server = KernelServer(
            pool, durability="checkpoint", checkpoint_interval=4
        )
        server.start_background()
        yield server
        server.shutdown(drain=False)

    def test_http_restore_with_restored_flag(self, server):
        client = ServeClient(server.host, server.port, "http-victim")
        a = client.upload(np.arange(N, dtype=np.float32))
        b = client.upload(np.ones(N, dtype=np.float32))
        c = client.malloc(4 * N)
        args = [{"allocation": a}, {"allocation": b},
                {"allocation": c}, N]
        reply = client.run("vecAdd", 1, N, args)
        assert reply["restored"] is False
        server.pool._workers[0].process.kill()
        out = client.read(c, np.float32, N)
        assert np.array_equal(out, _expected())
        stats = client.stats()["tenants"]["http-victim"]
        assert stats["restores"] == 1
        reply = client.run("vecAdd", 1, N, args)
        assert reply["ok"] is True
        client.close()

    def test_session_durability_override(self, server):
        client = ServeClient(
            server.host, server.port, "http-plain",
            durability="none",
        )
        session = server.pool.session("http-plain")
        assert not session._durable
        client.close()

    def test_collect_is_idempotent(self, server):
        client = ServeClient(server.host, server.port, "http-idem")
        launch = client.launch("vecAdd", 1, N, [])
        first = client.collect(launch)
        second = client.collect(launch)
        assert first == second
        client.close()

    def test_liveness_stays_200_while_ready_goes_503(self, server):
        client = ServeClient(server.host, server.port, "http-lb")
        assert client.health()["ok"] is True
        assert client.ready()["ready"] is True
        server.drain(timeout=60.0)
        # Liveness: still 200 (the raise-for-status path would throw
        # on a 503). Readiness: 503 payload with the reason.
        assert client.health()["draining"] is True
        ready = client.ready()
        assert ready["ready"] is False and ready["draining"] is True
        client.close()

    def test_client_retries_idempotent_requests(self, server):
        client = ServeClient(server.host, server.port, "http-retry")
        c = client.upload(np.arange(N, dtype=np.float32))
        real = client._transport
        dropped = {"count": 0}

        def flaky(method, path, payload):
            if path == "/v1/read" and dropped["count"] < 2:
                dropped["count"] += 1
                client._conn.close()
                raise ConnectionResetError("injected reset")
            return real(method, path, payload)

        client._transport = flaky
        out = client.read(c, np.float32, N)
        assert dropped["count"] == 2
        assert np.array_equal(
            out, np.arange(N, dtype=np.float32)
        )
        client.close()

    def test_client_never_resends_mutations(self, server):
        client = ServeClient(server.host, server.port, "http-mut")

        def always_down(method, path, payload):
            raise ConnectionResetError("injected reset")

        client._transport = always_down
        with pytest.raises(ConnectionResetError):
            client.malloc(4 * N)
        client.close()


class TestExports:
    def test_durability_api_exported(self):
        import repro

        assert repro.StateStore is StateStore
        health = repro.WorkerHealth(
            worker=0, alive=True, state="closed", epoch=1,
            restores=2, last_restore_seconds=0.5,
        )
        assert "restores=2" in health.describe()
