"""Interpreter edge cases: unordered float compares, the full atomic
operator set, vote reductions, and context-field coverage."""

import numpy as np
import pytest

from repro import Device, baseline_config, vectorized_config
from repro.ptx.types import DataType

HEADER = ".version 2.3\n.target sim\n"


def run_kernel(source, buffers, kernel="k", grid=1, block=32,
               config=None):
    device = Device(config=config or baseline_config())
    device.register_module(HEADER + source)
    allocations = []
    arguments = []
    for item in buffers:
        if isinstance(item, np.ndarray):
            allocation = device.upload(item)
            allocations.append(allocation)
            arguments.append(allocation)
        else:
            arguments.append(item)
    device.launch(kernel, grid=grid, block=block, args=arguments)
    return allocations


class TestUnorderedCompares:
    def test_ltu_true_for_nan(self):
        source = """
.entry k (.param .u64 data, .param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  setp.ltu.f32 %p1, %f1, 1.0;
  selp.u32 %r2, 1, 0, %p1;
  setp.lt.f32 %p2, %f1, 1.0;
  selp.u32 %r3, 1, 0, %p2;
  shl.b32 %r3, %r3, 1;
  or.b32 %r2, %r2, %r3;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r2;
  exit;
}
"""
        data = np.array(
            [0.5, 2.0, np.nan, 1.0] + [0.0] * 28, dtype=np.float32
        )
        buffers = run_kernel(
            source, [data, np.zeros(32, dtype=np.uint32)]
        )
        got = buffers[1].read(np.uint32, 32)
        # bit0 = ltu, bit1 = lt
        assert got[0] == 0b11  # 0.5 < 1: both
        assert got[1] == 0b00  # 2.0: neither
        assert got[2] == 0b01  # NaN: unordered-true only
        assert got[3] == 0b00  # equal: neither

    def test_nan_and_num_predicates(self):
        source = """
.entry k (.param .u64 data, .param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  setp.nan.f32 %p1, %f1, %f1;
  selp.u32 %r2, 1, 0, %p1;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r2;
  exit;
}
"""
        data = np.array([1.0, np.nan] + [0.0] * 30, dtype=np.float32)
        buffers = run_kernel(
            source, [data, np.zeros(32, dtype=np.uint32)]
        )
        got = buffers[1].read(np.uint32, 32)
        assert got[0] == 0
        assert got[1] == 1


class TestAtomicOperators:
    def _run_atomics(self, config):
        source = """
.entry k (.param .u64 cells)
{
  .reg .u32 %r<10>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  ld.param.u64 %rd1, [cells];
  // exch: last writer wins (some thread's id survives)
  atom.global.exch.u32 %r2, [%rd1], %r1;
  // inc with wrap limit 7
  atom.global.inc.u32 %r3, [%rd1+4], 7;
  // dec with floor behaviour
  atom.global.dec.u32 %r4, [%rd1+8], 100;
  // cas: only the thread seeing 0 installs its id+1
  add.u32 %r5, %r1, 1;
  atom.global.cas.u32 %r6, [%rd1+12], 0, %r5;
  // xor parity
  atom.global.xor.b32 %r7, [%rd1+16], 1;
  exit;
}
"""
        device = Device(config=config)
        device.register_module(HEADER + source)
        cells = device.upload(np.zeros(5, dtype=np.uint32))
        device.launch("k", grid=1, block=32, args=[cells])
        return cells.read(np.uint32, 5)

    @pytest.mark.parametrize(
        "config", [baseline_config(), vectorized_config(4)],
        ids=["baseline", "vec4"],
    )
    def test_atomic_semantics(self, config):
        got = self._run_atomics(config)
        assert got[0] < 32  # exch left some thread id
        assert got[1] == 32 % 8  # inc wraps at limit 7
        # dec from 0 with limit 100: first dec wraps to 100, then down
        assert got[2] == (100 - 31) % 101
        assert got[3] == 1  # only the first CAS succeeded (value 0+1)
        assert got[4] == 0  # 32 xors of 1 cancel


class TestVoteBallot:
    def test_ballot_mask(self):
        source = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .b32 %b<2>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 1;
  vote.ballot.b32 %b1, %p1;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %b1;
  exit;
}
"""
        device = Device(config=vectorized_config(4))
        device.register_module(HEADER + source)
        out = device.malloc(8 * 4)
        device.launch("k", grid=1, block=8, args=[out])
        got = out.read(np.uint32, 8)
        # warps of 4 consecutive threads: odd lanes set -> 0b1010
        assert np.all(got == 0b1010)


class TestContextFields:
    def test_all_dimensions_visible(self):
        source = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %tid.y;
  mov.u32 %r3, %ctaid.y;
  mov.u32 %r4, %nctaid.x;
  mov.u32 %r5, %ntid.y;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra DONE;
  setp.ne.u32 %p1, %r2, 1;
  @%p1 bra DONE;
  // thread (0,1) of cta (*,1) writes a summary word
  mad.lo.u32 %r6, %r3, 100, %r4;
  mad.lo.u32 %r6, %r6, 100, %r5;
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r6;
DONE:
  exit;
}
"""
        device = Device(config=baseline_config())
        device.register_module(HEADER + source)
        out = device.malloc(4)
        device.launch(
            "k", grid=(3, 2, 1), block=(2, 4, 1), args=[out]
        )
        # ctaid.y in {0,1}; last writer has ctaid.y == 1:
        # (1*100 + nctaid.x=3)*100 + ntid.y=4 = 10304
        got = out.read(np.uint32, 1)[0]
        assert got in (304, 10304)

    def test_laneid_matches_position(self):
        source = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %laneid;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r2;
  exit;
}
"""
        device = Device(config=vectorized_config(4))
        device.register_module(HEADER + source)
        out = device.malloc(8 * 4)
        device.launch("k", grid=1, block=8, args=[out])
        got = out.read(np.uint32, 8)
        assert list(got) == [0, 1, 2, 3, 0, 1, 2, 3]


class TestMemorySystemEdgeCases:
    """Arena allocator corner cases backing the fault-containment
    guarantees (precise frees, validated double frees, bounded traps)."""

    def _memory(self, size=1 << 16):
        from repro.machine.memory import MemorySystem

        return MemorySystem(size=size)

    def test_zero_size_allocate_is_valid_and_free(self):
        memory = self._memory()
        before = memory.bytes_allocated
        address = memory.allocate(0)
        assert address >= 64  # never inside the null guard
        assert memory.bytes_allocated == before
        memory.free(address, 0)  # no-op, must not raise
        assert memory.bytes_allocated == before

    def test_negative_allocation_raises(self):
        from repro.errors import MemoryFault

        with pytest.raises(MemoryFault, match="negative allocation"):
            self._memory().allocate(-1)

    def test_free_at_exact_arena_break_lowers_break(self):
        memory = self._memory()
        first = memory.allocate(64)
        second = memory.allocate(64)
        top = memory.bytes_allocated
        assert top == second + 64
        memory.free(second, 64)
        assert memory.bytes_allocated == second
        memory.free(first, 64)
        assert memory.bytes_allocated == first

    def test_interior_free_then_break_free_absorbs_both(self):
        memory = self._memory()
        first = memory.allocate(64)
        second = memory.allocate(64)
        memory.free(first, 64)  # interior: break unchanged
        assert memory.bytes_allocated == second + 64
        memory.free(second, 64)  # at break: absorbs the interior block
        assert memory.bytes_allocated == first

    def test_overlapping_free_detected(self):
        from repro.errors import MemoryFault

        memory = self._memory()
        first = memory.allocate(64)
        memory.allocate(64)  # keep the break above the freed region
        memory.free(first, 64)
        with pytest.raises(MemoryFault, match="double free"):
            memory.free(first, 64)
        with pytest.raises(MemoryFault, match="already-free"):
            memory.free(first + 16, 32)  # partial overlap

    def test_free_beyond_break_detected(self):
        from repro.errors import MemoryFault

        memory = self._memory()
        address = memory.allocate(64)
        with pytest.raises(MemoryFault, match="beyond the allocation"):
            memory.free(address, 1 << 12)

    def test_null_page_and_arena_end_fault(self):
        from repro.errors import MemoryFault
        from repro.ptx.types import DataType

        memory = self._memory()
        with pytest.raises(MemoryFault):
            memory.load(DataType.u32, 0)  # null page
        with pytest.raises(MemoryFault):
            memory.store(DataType.u32, memory.size - 2, 1)  # past end

    def test_memory_fault_message_and_payload(self):
        from repro.errors import MemoryFault

        fault = MemoryFault(0x1234, 8, reason="injected fault")
        assert "injected fault" in str(fault)
        assert "address=0x1234" in str(fault)
        assert "size=8" in str(fault)
        assert fault.address == 0x1234
        assert fault.size == 8
        assert fault.reason == "injected fault"
