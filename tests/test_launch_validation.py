"""Launch-path validation and resource-reclaim regressions.

Covers the three launch-path bugfixes:
- failed argument marshalling must not leak the parameter segment
  (the arena break is stable across repeated failed launches);
- bad argument values raise :class:`LaunchError` naming the
  parameter, never a raw ``struct.error``;
- grid/block validation rejects 4+-dimension tuples and non-positive
  components, naming the offending axis.
"""

import struct

import numpy as np
import pytest

from repro import Device
from repro.errors import LaunchError
from tests.conftest import VECADD_PTX
from tests.test_api_device import PARAM_ECHO_PTX


@pytest.fixture
def vec_device():
    device = Device()
    device.register_module(VECADD_PTX)
    return device


@pytest.fixture
def echo_device():
    device = Device()
    device.register_module(PARAM_ECHO_PTX)
    return device


def _vecadd_buffers(device, n=8):
    a = device.upload(np.arange(n, dtype=np.float32))
    b = device.upload(np.arange(n, dtype=np.float32))
    c = device.malloc(4 * n)
    return a, b, c


class TestParameterSegmentReclaim:
    def test_failed_marshalling_does_not_leak_arena(self, vec_device):
        """Regression: the marshalling loop used to run before the
        try/finally that frees the parameter segment, so every failed
        launch permanently grew the arena break."""
        a, b, c = _vecadd_buffers(vec_device)
        break_before = vec_device.memory._brk
        for _ in range(3):
            with pytest.raises(LaunchError):
                vec_device.launch("vecAdd", 1, 8, [a, b, c, "bogus"])
        assert vec_device.memory._brk == break_before

    def test_failed_marshalling_does_not_set_sticky_error(
        self, vec_device
    ):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(LaunchError):
            vec_device.launch("vecAdd", 1, 8, [a, b, c, None])
        assert vec_device.last_error is None
        vec_device.launch("vecAdd", 1, 8, [a, b, c, 8])
        assert np.allclose(
            c.read(np.float32, 8), np.arange(8) * 2
        )

    def test_successful_launch_reclaims_parameter_segment(
        self, vec_device
    ):
        a, b, c = _vecadd_buffers(vec_device)
        vec_device.launch("vecAdd", 1, 8, [a, b, c, 8])
        break_before = vec_device.memory._brk
        for _ in range(3):
            vec_device.launch("vecAdd", 1, 8, [a, b, c, 8])
        assert vec_device.memory._brk == break_before


class TestBadArgumentValues:
    """Every class of bad value surfaces as LaunchError naming the
    parameter — struct.error must never escape Device.launch."""

    def _launch(self, device, args):
        out = device.malloc(64)
        return device.launch(
            "echoParams", 1, 1, [out] + args
        )

    GOOD_TAIL = [7, -3, 1.5, 99, [0.1, 0.2, 0.3]]

    @pytest.mark.parametrize(
        "index,bad,parameter",
        [
            (0, "seven", "a"),          # str for .u32
            (0, 2.5, "a"),              # float for int param
            (0, -1, "a"),               # negative for unsigned
            (0, 1 << 40, "a"),          # out of u32 range
            (1, "minus", "b"),          # str for .s32
            (1, 1 << 33, "b"),          # out of s32 range
            (2, "pi", "c"),             # str for .f32
            (2, None, "c"),             # None for float
            (3, object(), "d"),         # arbitrary object for .u64
        ],
    )
    def test_bad_scalar_raises_launch_error(
        self, echo_device, index, bad, parameter
    ):
        args = list(self.GOOD_TAIL)
        args[index] = bad
        try:
            self._launch(echo_device, args)
        except struct.error:
            pytest.fail("raw struct.error escaped Device.launch")
        except LaunchError as error:
            assert f"{parameter!r}" in str(error)
        else:
            pytest.fail("bad argument value was accepted")

    def test_bad_array_element_names_parameter_and_index(
        self, echo_device
    ):
        args = list(self.GOOD_TAIL)
        args[4] = [0.1, "x", 0.3]
        with pytest.raises(LaunchError, match=r"'taps'.*element 1"):
            self._launch(echo_device, args)

    def test_non_sequence_for_array_parameter(self, echo_device):
        args = list(self.GOOD_TAIL)
        args[4] = 1.25
        with pytest.raises(LaunchError, match="'taps'"):
            self._launch(echo_device, args)

    def test_good_values_still_launch(self, echo_device):
        out = echo_device.malloc(64)
        echo_device.launch(
            "echoParams", 1, 1, [out] + self.GOOD_TAIL
        )
        assert out.read(np.uint32, 1)[0] == 7


class TestDimensionValidation:
    def test_four_dimensional_grid_rejected(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(
            LaunchError, match=r"grid has 4 dimensions"
        ):
            vec_device.launch("vecAdd", (1, 2, 3, 4), 8, [a, b, c, 8])

    def test_four_dimensional_block_rejected(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(
            LaunchError, match=r"block has 5 dimensions"
        ):
            vec_device.launch(
                "vecAdd", 1, (1, 1, 1, 1, 1), [a, b, c, 8]
            )

    @pytest.mark.parametrize(
        "block,axis",
        [((0, 1, 1), "block.x"), ((8, 0), "block.y"), ((8, 1, -2), "block.z")],
    )
    def test_non_positive_component_names_axis(
        self, vec_device, block, axis
    ):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(LaunchError, match=axis.replace(".", r"\.")):
            vec_device.launch("vecAdd", 1, block, [a, b, c, 8])

    def test_zero_grid_scalar_rejected(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(LaunchError, match=r"grid\.x must be >= 1"):
            vec_device.launch("vecAdd", 0, 8, [a, b, c, 8])

    def test_non_integer_dimension_rejected(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        with pytest.raises(LaunchError, match="grid"):
            vec_device.launch("vecAdd", 1.5, 8, [a, b, c, 8])

    def test_validation_rejects_before_any_allocation(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        break_before = vec_device.memory._brk
        for _ in range(3):
            with pytest.raises(LaunchError):
                vec_device.launch(
                    "vecAdd", (1, 2, 3, 4), 8, [a, b, c, 8]
                )
        assert vec_device.memory._brk == break_before

    def test_valid_shapes_still_accepted(self, vec_device):
        a, b, c = _vecadd_buffers(vec_device)
        vec_device.launch("vecAdd", (1,), (8, 1), [a, b, c, 8])
        assert np.allclose(c.read(np.float32, 8), np.arange(8) * 2)
        vec_device.launch(
            "vecAdd", np.int64(1), (np.int32(8),), [a, b, c, 8]
        )
