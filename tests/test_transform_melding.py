"""Control-flow melding pass tests: region detection, alignment,
profitability, config/cache-key plumbing, statistics surfacing, and
meld-on/off differential conformance across backends."""

from dataclasses import replace

import numpy as np
import pytest

from repro import Device, ExecutionConfig, vectorized_config
from repro.frontend import translate_kernel
from repro.ir import CondBranch, verify_function
from repro.machine.descriptor import sandybridge
from repro.ptx import parse
from repro.runtime.config import apply_meld_env
from repro.transforms import meld_function
from tests.conftest import COLLATZ_PTX, collatz_steps

HEADER = ".version 2.3\n.target sim\n"


def scalar_of(source, name="k"):
    return translate_kernel(parse(HEADER + source).kernel(name))


#: Divergent diamond with similar pure arms (the DARM motivating case).
DIAMOND = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mul.lo.u32 %r3, %r1, 3;
  add.u32 %r3, %r3, 1;
  bra JOIN;
EVEN:
  mul.lo.u32 %r3, %r1, 5;
  add.u32 %r3, %r3, 7;
JOIN:
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r3;
  exit;
}
"""

#: Same diamond shape, but the predicate derives from a kernel
#: parameter — provably uniform, never a divergence source.
UNIFORM_DIAMOND = """
.entry k (.param .u64 out, .param .u32 flag)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  ld.param.u32 %r2, [flag];
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mul.lo.u32 %r3, %r1, 3;
  add.u32 %r3, %r3, 1;
  bra JOIN;
EVEN:
  mul.lo.u32 %r3, %r1, 5;
  add.u32 %r3, %r3, 7;
JOIN:
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r3;
  exit;
}
"""

#: A store in only one arm: no partner to align with, so melding the
#: region would execute the store speculatively on the wrong path.
LONE_STORE = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  @%p1 bra EVEN;
  mul.lo.u32 %r3, %r1, 3;
  st.global.u32 [%rd3], %r3;
  bra JOIN;
EVEN:
  add.u32 %r4, %r1, 7;
JOIN:
  exit;
}
"""

#: ``%clock`` in an arm: a context read is neither speculable nor
#: alignable (its value depends on *when* it executes).
CLOCK_ARM = """
.entry k (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mov.u32 %r3, %clock;
  bra JOIN;
EVEN:
  add.u32 %r3, %r1, 7;
JOIN:
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r3;
  exit;
}
"""


# ---------------------------------------------------------------------------
# Pass-level unit tests
# ---------------------------------------------------------------------------


def test_diamond_melds_to_straight_line():
    function = scalar_of(DIAMOND)
    report = meld_function(function, sandybridge(), warp_size=4)
    assert report.melded_regions == 1
    assert report.rejected_regions == 0
    for block in function.ordered_blocks():
        assert not isinstance(block.terminator, CondBranch)
    verify_function(function)


def test_warp_size_one_never_melds():
    function = scalar_of(DIAMOND)
    report = meld_function(function, sandybridge(), warp_size=1)
    assert report.melded_regions == 0
    assert all(d.reason == "unprofitable" for d in report.decisions)
    # the divergent estimate degenerates to branch + one arm: there is
    # no divergence to pay for at width 1, so melding cannot win
    assert any(
        isinstance(block.terminator, CondBranch)
        for block in function.ordered_blocks()
    )


def test_uniform_branch_is_not_a_candidate():
    function = scalar_of(UNIFORM_DIAMOND)
    report = meld_function(function, sandybridge(), warp_size=4)
    assert report.melded_regions == 0
    assert report.decisions == []


def test_unaligned_store_rejects_region():
    function = scalar_of(LONE_STORE)
    report = meld_function(function, sandybridge(), warp_size=4)
    assert report.melded_regions == 0
    assert [d.reason for d in report.decisions] == ["unaligned-memory-op"]
    verify_function(function)


def test_context_read_rejects_region():
    function = scalar_of(CLOCK_ARM)
    report = meld_function(function, sandybridge(), warp_size=4)
    assert report.melded_regions == 0
    assert [d.reason for d in report.decisions] == [
        "unsupported-instruction"
    ]


def test_decisions_respect_profitability_model():
    for source, warp_size in ((DIAMOND, 4), (DIAMOND, 1)):
        function = scalar_of(source)
        report = meld_function(function, sandybridge(), warp_size)
        for decision in report.decisions:
            if decision.melded:
                assert (
                    decision.est_melded_cycles
                    < decision.est_divergent_cycles
                )
            elif decision.reason == "unprofitable":
                assert (
                    decision.est_melded_cycles
                    >= decision.est_divergent_cycles
                )


def test_collatz_loop_diamond_melds():
    function = translate_kernel(parse(COLLATZ_PTX).kernel("collatz"))
    report = meld_function(function, sandybridge(), warp_size=4)
    assert report.melded_regions == 1
    assert report.predicted_saving > 0
    verify_function(function)


# ---------------------------------------------------------------------------
# Config / cache-key / env plumbing
# ---------------------------------------------------------------------------


def test_cache_key_stable_with_meld_off():
    off = ExecutionConfig(meld=False).cache_key()
    on = ExecutionConfig(meld=True).cache_key()
    assert off != on
    assert ("meld",) in on
    assert all(entry != ("meld",) for entry in off)
    # meld-off digests are byte-identical to pre-meld releases: the
    # flag appends to the key instead of occupying a fixed slot
    assert on[:-1] == off


def test_repro_meld_env_enables(monkeypatch):
    monkeypatch.setenv("REPRO_MELD", "1")
    assert apply_meld_env(ExecutionConfig()).meld is True
    assert Device().config.meld is True
    monkeypatch.setenv("REPRO_MELD", "off")
    assert apply_meld_env(ExecutionConfig()).meld is False
    monkeypatch.delenv("REPRO_MELD")
    assert apply_meld_env(ExecutionConfig()).meld is False


# ---------------------------------------------------------------------------
# Statistics surfacing + differential conformance
# ---------------------------------------------------------------------------


def _run_collatz(config):
    device = Device(config=config)
    device.register_module(COLLATZ_PTX)
    rng = np.random.default_rng(7)
    data = rng.integers(1, 400, size=64, dtype=np.uint32)
    source = device.upload(data)
    destination = device.malloc(64 * 4)
    result = device.launch(
        "collatz",
        grid=(2, 1, 1),
        block=(32, 1, 1),
        args=[source, destination, 64],
    )
    values = destination.read(np.uint32, 64)
    expected = np.array(
        [collatz_steps(int(v)) for v in data], dtype=np.uint32
    )
    assert np.array_equal(values, expected)
    return values, result.statistics


def test_launch_statistics_surface_meld_decisions(monkeypatch):
    monkeypatch.delenv("REPRO_MELD", raising=False)
    _, stats_off = _run_collatz(vectorized_config(4))
    _, stats_on = _run_collatz(replace(vectorized_config(4), meld=True))
    assert stats_off.melded_regions == 0
    assert "melding" not in stats_off.report()
    assert stats_on.melded_regions == 1
    assert stats_on.meld_predicted_saving > 0
    assert "melding" in stats_on.report()
    assert stats_on.divergent_yields < stats_off.divergent_yields
    assert stats_on.total_cycles < stats_off.total_cycles


@pytest.mark.parametrize(
    "backend_kwargs",
    [
        {"interpreter_mode": "closure"},
        {"interpreter_mode": "dispatch"},
        {"backend": "array"},
    ],
    ids=["closure", "dispatch", "array"],
)
def test_meld_differential_per_backend(backend_kwargs, monkeypatch):
    """Melding preserves guest results bit-for-bit on every backend,
    and the modeled statistics of a fixed meld setting are identical
    across backends."""
    monkeypatch.delenv("REPRO_MELD", raising=False)
    base = vectorized_config(4)
    off_values, off_stats = _run_collatz(
        replace(base, **backend_kwargs)
    )
    on_values, on_stats = _run_collatz(
        replace(base, meld=True, **backend_kwargs)
    )
    assert np.array_equal(off_values, on_values)
    assert on_stats.divergent_yields <= off_stats.divergent_yields
    # and against the reference interpreter:
    _, reference_off = _run_collatz(base)
    _, reference_on = _run_collatz(replace(base, meld=True))
    for mine, reference in (
        (off_stats, reference_off),
        (on_stats, reference_on),
    ):
        assert mine.total_cycles == reference.total_cycles
        assert mine.yields_by_status == reference.yields_by_status
        assert mine.instructions == reference.instructions
