"""Self-healing DevicePool: reply correlation, interruptible waits,
shutdown escalation, crash/hang/pipe chaos, warm respawn with epoch
semantics, retry/backoff, circuit breaking, deadlines, and
service-level load shedding + graceful drain."""

import os
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    DeadlineExpired,
    DeviceLost,
    LaunchError,
    ServiceUnavailable,
)
from repro.runtime.pool import CircuitBreaker, DevicePool, RetryPolicy
from repro.runtime.service import KernelServer, ServeClient
from repro.runtime.traps import format_device_lost
from repro.testing.fault_injection import FaultInjector
from tests.conftest import VECADD_PTX

N = 8

#: Victim module registered through the *session* (tenant-private), so
#: respawn must replay it from the parent's journal.
PRIVATE_PTX = VECADD_PTX.replace("vecAdd", "privAdd")

#: A kernel with no pointer arguments: queued launches survive a
#: respawn (nothing to go stale), so a RetryPolicy can re-dispatch
#: them transparently.
NOOP_PTX = r"""
.version 2.3
.target sim

.entry poolNoop (.param .u32 n)
{
  .reg .u32 %r<2>;
  ld.param.u32 %r1, [n];
  exit;
}
"""


def _buffers(session):
    a = session.upload(np.arange(N, dtype=np.float32))
    b = session.upload(np.arange(N, dtype=np.float32))
    c = session.malloc(4 * N)
    return a, b, c


def _wait_recovered(pool, index=0, epoch=1, timeout=60.0):
    """Poll until worker ``index`` is alive again at ``epoch`` with a
    closed breaker; returns the final WorkerHealth."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = pool.health()[index]
        if (
            health.alive
            and health.epoch >= epoch
            and health.state == "closed"
        ):
            return health
        time.sleep(0.02)
    return pool.health()[index]


class TestReplyCorrelation:
    def test_stale_reply_is_discarded_not_misattributed(self):
        """Regression: a reply left in the pipe by a timed-out call
        must never be returned to the next caller."""
        with DevicePool(workers=1, supervise=False) as pool:
            worker = pool._workers[0]
            with pytest.raises(LaunchError, match="timed out"):
                worker.call("chaos_hang", duration=0.4, timeout=0.05)
            # The hang's reply arrives first; it must be dropped and
            # the ping's own (correlated) reply returned.
            reply = worker.call("ping", timeout=30.0)
            assert reply["pid"] == worker.process.pid

    def test_shutdown_interrupts_waiting_call(self):
        """The worker lock covers only send/bookkeeping: a caller
        blocked on a slow request cannot block shutdown, and shutdown
        resolves the waiter with DeviceLost."""
        pool = DevicePool(workers=1, supervise=False)
        worker = pool._workers[0]
        errors = []

        def slow():
            try:
                worker.call("chaos_hang", duration=30.0)
            except LaunchError as error:
                errors.append(error)

        thread = threading.Thread(target=slow)
        thread.start()
        time.sleep(0.3)  # let the request reach the worker
        start = time.monotonic()
        pool.shutdown()
        assert time.monotonic() - start < 20.0
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert errors and isinstance(errors[0], DeviceLost)

    def test_shutdown_escalates_terminate_to_kill(self):
        """A worker that ignores SIGTERM is killed, and teardown never
        raises (guarded close)."""
        pool = DevicePool(workers=1, supervise=False)
        worker = pool._workers[0]
        worker.call("chaos_ignore_term", timeout=30.0)
        pid = worker.process.pid
        worker.mark_lost("test: sigterm ignored")
        worker.reap(timeout=1.0)
        with pytest.raises(OSError):
            os.kill(pid, 0)
        pool.shutdown()  # double teardown stays silent


class TestCrashRecovery:
    @pytest.mark.parametrize("backend", ["interpreter", "array"])
    def test_kill_respawn_epoch_journal_and_isolation(
        self, backend, monkeypatch
    ):
        """The acceptance drill: kill worker 0 mid-launch; in-flight
        work resolves to DeviceLost at the dead epoch, the supervisor
        respawns the worker (replaying the tenant-private module
        journal), stale allocations fail fast, and the co-tenant on
        worker 1 is untouched."""
        monkeypatch.setenv("REPRO_BACKEND", backend)
        with DevicePool(
            workers=2, modules=[VECADD_PTX], circuit_cooldown=0.2
        ) as pool:
            pool.ready(timeout=300.0)
            victim = pool.session("victim", worker=0)
            healthy = pool.session("healthy", worker=1)
            victim.register_module(PRIVATE_PTX)
            va, vb, vc = _buffers(victim)
            ha, hb, hc = _buffers(healthy)
            victim.launch("privAdd", 1, N, [va, vb, vc, N])

            injector = FaultInjector(pool, seed=0)
            injector.arm(
                "kill_worker", probability=1.0, worker=0, op="launch"
            )
            future = victim.launch_async(
                "privAdd", 1, N, [va, vb, vc, N]
            )
            error = future.exception(timeout=120.0)
            injector.restore()

            assert isinstance(error, DeviceLost)
            assert error.worker == 0
            assert error.epoch == 0
            assert error.delivered is True
            assert "worker 0" in str(error)
            report = format_device_lost(error)
            assert "device lost: worker 0" in report
            assert "never retried automatically" in report
            assert victim.stats.device_lost >= 1

            health = _wait_recovered(pool, index=0, epoch=1)
            assert health.alive and health.epoch == 1
            assert health.respawns == 1
            assert "worker health:" in pool.report()

            # Allocations from the dead epoch fail fast.
            with pytest.raises(DeviceLost, match="epoch"):
                victim.read(vc, np.float32, N)
            with pytest.raises(DeviceLost, match="re-allocate"):
                victim.write(va, np.ones(N, dtype=np.float32))

            # An infrastructure loss is not a sticky tenant fault:
            # fresh buffers + the journal-replayed private module work
            # on the respawned worker without a reset().
            a2, b2, c2 = _buffers(victim)
            victim.launch("privAdd", 1, N, [a2, b2, c2, N])
            assert np.allclose(
                victim.read(c2, np.float32, N), np.arange(N) * 2
            )

            # Co-tenant on worker 1: same epoch, same buffers, zero
            # failures.
            assert pool.health()[1].epoch == 0
            healthy.launch("vecAdd", 1, N, [ha, hb, hc, N])
            assert np.allclose(
                healthy.read(hc, np.float32, N), np.arange(N) * 2
            )
            assert healthy.stats.failed == 0

    def test_hung_worker_detected_and_recycled(self):
        """Stuck-call supervision: a wedged worker is declared hung
        past hang_timeout, the in-flight launch fails with DeviceLost,
        and the slot is respawned."""
        with DevicePool(
            workers=1,
            modules=[NOOP_PTX],
            hang_timeout=0.5,
            circuit_cooldown=0.2,
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("wedged")
            injector = FaultInjector(pool, seed=0)
            injector.arm(
                "hang_worker", probability=1.0, worker=0,
                op="launch", duration=30.0,
            )
            future = session.launch_async("poolNoop", 1, N, [N])
            error = future.exception(timeout=120.0)
            injector.restore()
            assert isinstance(error, DeviceLost)
            assert "hung" in error.cause
            health = _wait_recovered(pool)
            assert health.alive and health.respawns >= 1
            session.launch("poolNoop", 1, N, [N])

    def test_drop_pipe_is_undelivered_loss(self):
        """A send onto a broken pipe never reached the worker: the
        loss carries delivered=False."""
        with DevicePool(
            workers=1, modules=[NOOP_PTX], circuit_cooldown=0.2
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("dropped")
            injector = FaultInjector(pool, seed=0)
            injector.arm(
                "drop_pipe", probability=1.0, worker=0, op="launch"
            )
            future = session.launch_async("poolNoop", 1, N, [N])
            error = future.exception(timeout=120.0)
            injector.restore()
            assert isinstance(error, DeviceLost)
            assert error.delivered is False
            _wait_recovered(pool)
            session.launch("poolNoop", 1, N, [N])


class TestRetryPolicy:
    def test_undelivered_launch_retried_to_success(self):
        """drop_pipe fails the dispatch before the request leaves the
        parent; the session's RetryPolicy re-queues it with backoff
        and it completes on the respawned worker."""
        with DevicePool(
            workers=1, modules=[NOOP_PTX], circuit_cooldown=0.2
        ) as pool:
            pool.ready(timeout=300.0)
            session = pool.session(
                "retrier",
                retry=RetryPolicy(max_attempts=4, base_delay=0.3),
            )
            injector = FaultInjector(pool, seed=0)
            injector.arm(
                "drop_pipe", probability=1.0, worker=0, op="launch"
            )
            future = session.launch_async("poolNoop", 1, N, [N])
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if injector.fired.get("drop_pipe"):
                    break
                time.sleep(0.005)
            injector.restore()  # one-shot: let the retry through
            result = future.result(timeout=120.0)
            assert result.kernel_name == "poolNoop"
            assert session.stats.retries >= 1
            assert session.stats.completed == 1
            assert session.stats.failed == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_and_jitter_bounded(self):
        import random

        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, jitter=0.5
        )
        rng = random.Random(0)
        first = policy.backoff(1, rng)
        second = policy.backoff(2, rng)
        assert 0.1 <= first <= 0.15
        assert 0.2 <= second <= 0.3


class TestCircuitBreaker:
    def test_transitions(self):
        breaker = CircuitBreaker(threshold=2, cooldown=0.1)
        assert breaker.state == "closed" and breaker.allow_probe()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow_probe()
        time.sleep(0.12)
        assert breaker.allow_probe()
        assert breaker.state == "half-open"
        breaker.record_failure()  # probe failed: re-open
        assert breaker.state == "open"
        time.sleep(0.12)
        assert breaker.allow_probe()
        breaker.record_success()  # probe succeeded: close + clear
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)


class TestDeadlines:
    def test_queued_launch_expires_before_dispatch(self):
        """A wedged worker holds the queue; a deadline-bearing launch
        behind it expires with DeadlineExpired instead of running
        late. The launch never ran: guest memory untouched."""
        with DevicePool(workers=1, modules=[NOOP_PTX]) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("deadline")
            injector = FaultInjector(pool, seed=0)
            injector.arm(
                "hang_worker", probability=1.0, worker=0,
                op="launch", duration=1.0,
            )
            first = session.launch_async("poolNoop", 1, N, [N])
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if injector.fired.get("hang_worker"):
                    break
                time.sleep(0.005)
            injector.restore()
            second = session.launch_async(
                "poolNoop", 1, N, [N], deadline=0.1
            )
            error = second.exception(timeout=120.0)
            assert isinstance(error, DeadlineExpired)
            assert first.exception(timeout=120.0) is None
            assert session.stats.expired == 1


class TestServiceResilience:
    def test_admission_control_sheds_503_with_retry_after(self):
        pool = DevicePool(workers=1, modules=[VECADD_PTX])
        pool.ready(timeout=300.0)
        server = KernelServer(pool, max_queue_depth=0)
        server.start_background()
        try:
            client = ServeClient(
                server.host, server.port, tenant="shed"
            )
            with pytest.raises(ServiceUnavailable) as info:
                client.launch("vecAdd", 1, N, [])
            assert info.value.retry_after == 1.0
            health = client.health()
            assert health["ok"] is True and not health["draining"]
            assert health["workers"][0]["state"] == "closed"
            client.close()
        finally:
            server.shutdown(drain=False)

    def test_per_tenant_queue_bound(self):
        pool = DevicePool(workers=1, modules=[VECADD_PTX])
        pool.ready(timeout=300.0)
        server = KernelServer(pool, max_tenant_queue=0)
        server.start_background()
        try:
            client = ServeClient(
                server.host, server.port, tenant="bounded"
            )
            with pytest.raises(ServiceUnavailable, match="bounded"):
                client.launch("vecAdd", 1, N, [])
            client.close()
        finally:
            server.shutdown(drain=False)

    def test_graceful_drain_flushes_then_sheds(self):
        pool = DevicePool(workers=1, modules=[VECADD_PTX])
        pool.ready(timeout=300.0)
        server = KernelServer(pool)
        server.start_background()
        try:
            client = ServeClient(
                server.host, server.port, tenant="drainee"
            )
            a = client.upload(np.arange(N, dtype=np.float32))
            b = client.upload(np.arange(N, dtype=np.float32))
            c = client.malloc(4 * N)
            launch = client.launch(
                "vecAdd", 1, N,
                [{"allocation": a}, {"allocation": b},
                 {"allocation": c}, N],
            )
            server.drain(timeout=120.0)
            assert server.draining
            # New launches shed; in-flight results still collectable.
            with pytest.raises(ServiceUnavailable, match="draining"):
                client.launch("vecAdd", 1, N, [])
            reply = client.collect(launch)
            assert reply["ok"] is True
            assert client.health()["draining"] is True
            assert np.allclose(
                client.read(c, np.float32, N), np.arange(N) * 2
            )
            client.close()
        finally:
            server.shutdown(drain=False)


class TestExports:
    def test_resilience_api_exported(self):
        import repro

        for name in (
            "DeviceLost",
            "DeadlineExpired",
            "ServiceUnavailable",
            "RetryPolicy",
            "WorkerHealth",
            "format_device_lost",
        ):
            assert hasattr(repro, name), name
