"""The HTTP serving front-end (`python -m repro.serve`) and the
concurrent-clients bench harness."""

import json
import threading

import numpy as np
import pytest

from repro import DevicePool, QuotaExceeded
from repro.errors import LaunchError
from repro.runtime.service import KernelServer, ServeClient
from tests.conftest import VECADD_PTX

N = 8
CHAOS_PTX = VECADD_PTX.replace("vecAdd", "chaosAdd")


@pytest.fixture(scope="module")
def server():
    pool = DevicePool(workers=2, modules=[VECADD_PTX])
    pool.ready(timeout=300.0)
    server = KernelServer(pool, port=0)
    server.start_background()
    yield server
    server.shutdown()


def _vecadd_roundtrip(client):
    a = client.upload(np.arange(N, dtype=np.float32))
    b = client.upload(np.arange(N, dtype=np.float32))
    c = client.malloc(4 * N)
    reply = client.run(
        "vecAdd", 1, N,
        [{"allocation": a}, {"allocation": b}, {"allocation": c}, N],
    )
    assert reply["ok"] and reply["kernel"] == "vecAdd"
    assert reply["instructions"] > 0
    return client.read(c, np.float32, N)


class TestServeRoundtrip:
    def test_register_malloc_launch_collect(self, server):
        with ServeClient(server.host, server.port, "rt") as client:
            out = _vecadd_roundtrip(client)
            assert np.allclose(out, np.arange(N) * 2)

    def test_write_and_free(self, server):
        with ServeClient(server.host, server.port, "rt2") as client:
            buffer = client.malloc(4 * N)
            client.write(
                buffer, np.full(N, 5.0, dtype=np.float32)
            )
            assert np.allclose(
                client.read(buffer, np.float32, N), 5.0
            )
            client.free(buffer)

    def test_stats_endpoint(self, server):
        # Run a launch in this test's own session first: the server
        # fixture is module-scoped and test order is not guaranteed,
        # so the completed count cannot lean on an earlier test.
        with ServeClient(server.host, server.port, "rt-stats") as client:
            _vecadd_roundtrip(client)
            stats = client.stats()
        assert stats["workers"] == 2
        assert "rt-stats" in stats["tenants"]
        assert stats["tenants"]["rt-stats"]["completed"] >= 1
        assert "device pool" in stats["report"]

    def test_four_concurrent_clients(self, server):
        results = {}
        errors = []

        def run(name):
            try:
                with ServeClient(
                    server.host, server.port, name
                ) as client:
                    results[name] = _vecadd_roundtrip(client)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append((name, error))

        threads = [
            threading.Thread(target=run, args=(f"conc-{index}",))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 4
        for out in results.values():
            assert np.allclose(out, np.arange(N) * 2)


class TestServeErrors:
    def test_unknown_kernel_is_client_error(self, server):
        with ServeClient(server.host, server.port, "err") as client:
            launch = client.launch("noSuchKernel", 1, N, [])
            reply = client.collect(launch)
            assert not reply["ok"]

    def test_bad_dimensions_rejected_at_submit(self, server):
        with ServeClient(server.host, server.port, "err") as client:
            with pytest.raises(LaunchError, match="dimensions"):
                client.launch("vecAdd", [1, 1, 1, 1], N, [])

    def test_unknown_allocation_rejected(self, server):
        with ServeClient(server.host, server.port, "err") as client:
            with pytest.raises(LaunchError, match="allocation"):
                client.read(987654, np.float32, N)

    def test_quota_maps_to_429(self, server):
        with ServeClient(
            server.host, server.port, "quota-http", max_launches=1
        ) as client:
            a = client.upload(np.arange(N, dtype=np.float32))
            c = client.malloc(4 * N)
            args = [
                {"allocation": a}, {"allocation": a},
                {"allocation": c}, N,
            ]
            client.run("vecAdd", 1, N, args)
            with pytest.raises(QuotaExceeded):
                client.launch("vecAdd", 1, N, args)

    def test_cross_tenant_allocation_rejected(self, server):
        with ServeClient(server.host, server.port, "owner") as owner:
            theirs = owner.upload(np.arange(N, dtype=np.float32))
            with ServeClient(
                server.host, server.port, "thief"
            ) as thief:
                with pytest.raises(LaunchError, match="belongs to"):
                    thief.read(theirs, np.float32, N)


class TestServeFaultIsolation:
    def test_trapping_client_isolated_over_http(self, server):
        """A client whose kernel traps gets a structured error reply;
        other clients' launches keep completing correctly."""
        healthy = ServeClient(server.host, server.port, "iso-healthy")
        try:
            assert np.allclose(
                _vecadd_roundtrip(healthy), np.arange(N) * 2
            )
            with ServeClient(
                server.host, server.port, "iso-chaos",
                worker=healthy.worker,
            ) as chaos:
                chaos.register(CHAOS_PTX)
                chaos.inject_fault(
                    "memory_fault", probability=1.0, seed=5
                )
                a = chaos.upload(np.ones(N, dtype=np.float32))
                c = chaos.malloc(4 * N)
                reply = chaos.collect(chaos.launch(
                    "chaosAdd", 1, N,
                    [{"allocation": a}, {"allocation": a},
                     {"allocation": c}, N],
                ))
                assert not reply["ok"]
                assert reply["error"]["type"] == "KernelTrap"
                assert "chaosAdd" in reply["error"]["report"]
                chaos.disarm_faults()
                chaos.reset()
            # Same-worker healthy client unaffected.
            assert np.allclose(
                _vecadd_roundtrip(healthy), np.arange(N) * 2
            )
        finally:
            healthy.close()


class TestServeBench:
    def test_bench_smoke_writes_json(self, tmp_path):
        from repro.bench.serve_bench import format_serve, run_serve_bench

        output = tmp_path / "BENCH_serve.json"
        record = run_serve_bench(
            clients=2,
            workers=2,
            launches=2,
            scale=0.25,
            chaos=True,
            assert_speedup=None,
            output=str(output),
        )
        written = json.loads(output.read_text())
        assert written["experiment"] == "serve"
        assert written["clients"] == 2
        assert written["speedup"] > 0
        assert written["chaos"]["trapped_launches"] >= 1
        assert written["chaos"]["outcomes"] == ["KernelTrap"]
        for tenant, stats in written["tenants"].items():
            if tenant.startswith("client-"):
                assert stats["failed"] == 0
        text = format_serve(record)
        assert "serving bench" in text
        assert "speedup" in text
