"""Array-vectorized execution backend tests.

The array backend batches every resident warp of an entry point into
numpy array programs over uniform block runs; divergent or yielding
warps fall back to the closure path mid-kernel. Because it is a pure
host-side optimization, every *modeled* statistic must stay
bit-identical to the sequential closure interpreter — these tests pin
that A/B equivalence on divergent, barrier-heavy and precise-mode
workloads, the backend selection surface (config validation, cache-key
namespacing, ``REPRO_BACKEND``), and the ready-pool's deferred-result
injection that keeps warp formation order exactly sequential.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import Device, ExecutionConfig, vectorized_config
from repro.machine.array_backend import ArrayBackend
from repro.machine.backend import BACKENDS, create_backend
from repro.runtime.config import apply_backend_env
from repro.runtime.context import ThreadContext, Warp
from repro.runtime.execution_manager import _ReadyPool
from repro.workloads.registry import get_workload
from tests.test_interpreter_lowering import _modeled_statistics


@pytest.fixture(autouse=True)
def _pin_backend(monkeypatch):
    """This module tests backend selection itself: the CI matrix's
    ``REPRO_BACKEND`` override must not redirect the configs built
    here (the env-override tests set the variable explicitly)."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


# ---------------------------------------------------------------------------
# Backend selection surface
# ---------------------------------------------------------------------------


class TestBackendConfig:
    def test_known_backends(self):
        assert "interpreter" in BACKENDS
        assert "array" in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionConfig(backend="cuda")

    def test_array_requires_closure_lowering(self):
        with pytest.raises(ValueError, match="closure"):
            ExecutionConfig(
                backend="array", interpreter_mode="dispatch"
            )

    def test_cache_key_namespaces_array_backend(self):
        base = vectorized_config(4)
        array = replace(base, backend="array")
        assert base.cache_key() != array.cache_key()
        assert ("backend", "array") in array.cache_key()
        # the default backend's key stays byte-identical to releases
        # that predate the backend axis
        assert not any(
            isinstance(entry, tuple) and entry[:1] == ("backend",)
            for entry in base.cache_key()
        )

    def test_device_builds_array_backend(self):
        device = Device(
            config=replace(vectorized_config(4), backend="array")
        )
        assert isinstance(device.interpreter, ArrayBackend)
        assert device.interpreter.supports_batching

    def test_create_backend_rejects_unknown(self):
        from repro.machine import sandybridge
        from repro.machine.memory import MemorySystem

        with pytest.raises(ValueError):
            create_backend(
                "jit", sandybridge(), MemorySystem(1 << 12)
            )

    def test_env_override_selects_array(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "array")
        assert apply_backend_env(
            vectorized_config(4)
        ).backend == "array"

    def test_env_override_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "jit")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            apply_backend_env(vectorized_config(4))

    def test_env_override_leaves_dispatch_alone(self, monkeypatch):
        # dispatch mode cannot batch; the override must not break a
        # dispatch-mode config when CI exports REPRO_BACKEND=array
        monkeypatch.setenv("REPRO_BACKEND", "array")
        config = replace(
            vectorized_config(4), interpreter_mode="dispatch"
        )
        assert apply_backend_env(config).backend == "interpreter"

    def test_explicit_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "interpreter")
        config = replace(vectorized_config(4), backend="array")
        assert apply_backend_env(config).backend == "array"


# ---------------------------------------------------------------------------
# A/B: array batching vs sequential closure path
# ---------------------------------------------------------------------------


# BitonicSort: data-dependent branching (mid-kernel fallback);
# Reduction: bar.sync tree (warps park at barriers between batches);
# Clock: %clock forces precise accounting, which cannot batch;
# BinomialOptions / ScanLargeArray: loop-heavy, the biggest batch
# consumers; throughput: the Table-1 FMA microbenchmark.
AB_WORKLOADS = [
    "BitonicSort",
    "Reduction",
    "Clock",
    "BinomialOptions",
    "ScanLargeArray",
    "throughput",
]


class TestArrayBackendEquivalence:
    @pytest.mark.parametrize("name", AB_WORKLOADS)
    def test_modeled_statistics_bit_identical(self, name):
        workload = get_workload(name)
        observed = {}
        for backend in ("interpreter", "array"):
            config = replace(
                vectorized_config(4), backend=backend
            )
            run = workload.run_on(config, scale=0.25)
            assert run.correct, f"{name} incorrect under {backend}"
            observed[backend] = _modeled_statistics(run.statistics)
        assert observed["array"] == observed["interpreter"]

    def test_batching_engages_on_uniform_kernels(self):
        workload = get_workload("throughput")
        run = workload.run_on(
            replace(vectorized_config(4), backend="array"),
            scale=0.25,
        )
        assert run.correct
        assert run.statistics.batched_warps > 0

    def test_sequential_backend_never_batches(self):
        workload = get_workload("throughput")
        run = workload.run_on(vectorized_config(4), scale=0.25)
        assert run.correct
        assert run.statistics.batched_warps == 0

    def test_batch_fault_traps_like_sequential(self):
        # A fault inside a batch is re-executed sequentially, so the
        # structured trap names the same thread the sequential backend
        # would have blamed.
        from repro.errors import KernelTrap
        from tests.test_fault_containment import _oob_device

        observed = {}
        for backend in ("interpreter", "array"):
            device = _oob_device(
                replace(vectorized_config(4), backend=backend)
            )
            buffer = device.malloc(16)
            with pytest.raises(KernelTrap) as excinfo:
                device.launch("oob", grid=1, block=64, args=[buffer])
            info = excinfo.value.info
            assert info.faulting_lanes, backend
            observed[backend] = (
                info.faulting_lanes[0].tid,
                info.block_label,
                info.instruction_index,
            )
        assert observed["array"] == observed["interpreter"]

    def test_divergent_workload_batches_and_falls_back(self):
        # BinomialOptions both batches (uniform loop bodies) and
        # yields (barriers): the deferred results must re-enter the
        # scheduler in sequential order
        workload = get_workload("BinomialOptions")
        run = workload.run_on(
            replace(vectorized_config(4), backend="array"),
            scale=0.25,
        )
        assert run.correct
        assert run.statistics.batched_warps > 0
        assert run.statistics.barrier_yields > 0


# ---------------------------------------------------------------------------
# Ready-pool deferred-result injection
# ---------------------------------------------------------------------------


def _context(tid, entry=0, cta=0):
    return ThreadContext(
        tid=(tid, 0, 0),
        ntid=(64, 1, 1),
        ctaid=(cta, 0, 0),
        nctaid=(4, 1, 1),
        resume_point=entry,
    )


def _item(contexts, tag):
    """A fake batch-result tuple: only ``item[0].contexts`` and
    identity matter to the pool."""
    return (Warp(contexts=list(contexts)), tag, None, None, None)


class TestReadyPoolDeferral:
    def test_head_batch_peeks_without_popping(self):
        pool = _ReadyPool()
        for tid in range(4):
            pool.push(_context(tid))
        assert pool.head_batch(2) == (0, 0, 4)
        assert pool.size == 4

    def test_head_batch_requires_two_full_chunks(self):
        pool = _ReadyPool()
        for tid in range(3):
            pool.push(_context(tid))
        assert pool.head_batch(2) is None

    def test_pop_chunks_and_defer_roundtrip(self):
        pool = _ReadyPool()
        for tid in range(4):
            pool.push(_context(tid))
        chunks = pool.pop_chunks(2)
        assert [[c.tid[0] for c in chunk] for chunk in chunks] == [
            [0, 1], [2, 3]
        ]
        assert pool.size == 0
        items = [_item(chunk, i) for i, chunk in enumerate(chunks)]
        pool.defer(items)
        assert pool.size == 4
        # pending results block further batching at this key
        assert pool.head_batch(2) is None
        drained = []
        while True:
            item = pool.pop_deferred()
            if item is None:
                break
            drained.append(item[1])
        assert drained == [0, 1]
        assert pool.size == 0
        assert pool.pop_group(4) == []

    def test_defer_advances_round_robin_one_step(self):
        # Deferring at key A must move A behind key B — exactly as if
        # the first warp of the batch had just been popped — so B's
        # threads are served before A's remaining results drain.
        pool = _ReadyPool()
        for tid in range(4):
            pool.push(_context(tid, entry=0))
        for tid in range(4, 6):
            pool.push(_context(tid, entry=1))
        chunks = pool.pop_chunks(2)
        assert len(chunks) == 2
        pool.defer(
            [_item(chunk, tag) for chunk, tag in zip(chunks, "ab")]
        )
        # head is now B: no pending there, so nothing drains yet
        assert pool.pop_deferred() is None
        group = pool.pop_group(2)
        assert [c.tid[0] for c in group] == [4, 5]
        item = pool.pop_deferred()
        assert item is not None and item[1] == "a"
        item = pool.pop_deferred()
        assert item is not None and item[1] == "b"
        assert pool.size == 0

    def test_contexts_reports_pending_threads(self):
        # watchdog/deadlock reports must see threads parked in pending
        # batch results
        pool = _ReadyPool()
        for tid in range(4):
            pool.push(_context(tid))
        chunks = pool.pop_chunks(2)
        pool.defer([_item(chunk, i) for i, chunk in enumerate(chunks)])
        tids = sorted(c.tid[0] for c in pool.contexts())
        assert tids == [0, 1, 2, 3]
