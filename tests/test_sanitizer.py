"""Kernel sanitizer: guest-memory memcheck, the shared-memory race
detector, quarantine/redzone shadow bookkeeping, trap integration,
non-fatal accumulation, and the fault-injection sites that prove each
check catches its fault class with exact coordinates."""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Device,
    ExecutionConfig,
    KernelTrap,
    SanitizerError,
    format_sanitizer_report,
    format_sanitizer_reports,
    format_trap,
    vectorized_config,
)
from repro.errors import MemoryFault
from repro.machine.memory import MemorySystem
from repro.runtime.statistics import LaunchStatistics
from repro.sanitizer import KernelSanitizer, apply_sanitize_env
from repro.sanitizer.shadow import (
    INITIALIZED,
    QUARANTINE,
    REDZONE,
    UNADDRESSABLE,
    UNINITIALIZED,
)
from repro.testing import FaultInjector
from repro.workloads.registry import get_workload

from tests.conftest import REDUCE_PTX, VECADD_PTX

#: Writes tid to out[tid] unconditionally: launching one thread more
#: than the buffer holds is a genuine off-by-one overflow that stays
#: inside the arena — only redzones can see it.
FILL_PTX = r"""
.version 2.3
.target sim
.entry fill (.param .u64 out)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r1;
  exit;
}
"""

#: Every thread stores its tid to shared slot 0 before the barrier: a
#: genuine same-interval W-W race. The race-free variant below writes
#: per-thread slots instead.
RACY_PTX = r"""
.version 2.3
.target sim
.entry racy (.param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  .shared .u32 sdata[16];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, sdata;
  st.shared.u32 [%r2], %r1;
  bar.sync 0;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra DONE;
  ld.shared.u32 %r3, [%r2];
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r3;
DONE:
  exit;
}
"""

SAFE_SHARED_PTX = r"""
.version 2.3
.target sim
.entry safeShared (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  .shared .u32 sdata[16];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, sdata;
  shl.b32 %r3, %r1, 2;
  add.u32 %r4, %r2, %r3;
  st.shared.u32 [%r4], %r1;
  bar.sync 0;
  xor.b32 %r5, %r1, 1;
  shl.b32 %r6, %r5, 2;
  add.u32 %r7, %r2, %r6;
  ld.shared.u32 %r5, [%r7];
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r5;
  exit;
}
"""

#: Sums src[0..n) into out[tid]: reads a buffer the host may never
#: have written — the initcheck scenario.
SUM_PTX = r"""
.version 2.3
.target sim
.entry sumAll (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, 0;
  mov.f32 %f1, 0f00000000;
  ld.param.u32 %r2, [n];
  ld.param.u64 %rd1, [src];
LOOP:
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f1, %f1, %f2;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra LOOP;
  mov.u32 %r3, %tid.x;
  mul.wide.u32 %rd4, %r3, 4;
  ld.param.u64 %rd5, [dst];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f1;
  exit;
}
"""


def scalar_config(**kwargs):
    """Deterministic thread order: tid 0 executes first, so injected
    faults land on exact, assertable coordinates."""
    return ExecutionConfig(
        warp_sizes=(1,), scalar_yields_at_branches=False, **kwargs
    )


def sanitized_device(source, fatal=True, checks=True, config=None):
    config = config or scalar_config(
        sanitize=checks, sanitize_fatal=fatal
    )
    device = Device(config=config)
    device.register_module(source)
    return device


# -- configuration surface -------------------------------------------------


class TestConfig:
    def test_off_by_default(self):
        config = ExecutionConfig()
        assert config.sanitize_checks == ()

    def test_normalization(self):
        assert ExecutionConfig(sanitize=True).sanitize_checks == (
            "memcheck", "racecheck", "initcheck",
        )
        assert ExecutionConfig(
            sanitize="memcheck"
        ).sanitize_checks == ("memcheck",)
        # Canonical order regardless of input order.
        assert ExecutionConfig(
            sanitize=("initcheck", "memcheck")
        ).sanitize_checks == ("memcheck", "initcheck")

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer check"):
            ExecutionConfig(sanitize=("memchk",))

    def test_dispatch_mode_cannot_sanitize(self):
        with pytest.raises(ValueError, match="dispatch"):
            ExecutionConfig(sanitize=True, interpreter_mode="dispatch")

    def test_cache_key_off_is_byte_identical_to_pre_sanitizer(self):
        # The off-mode key must stay the exact historical 7-tuple so
        # persistent-cache digests of unsanitized configs are stable.
        assert ExecutionConfig().cache_key() == (
            (1, 2, 4), False, False, True, None, False, False,
        )

    def test_cache_key_on_appends_checks(self):
        off = ExecutionConfig().cache_key()
        on = ExecutionConfig(sanitize=True).cache_key()
        assert on[: len(off)] == off
        assert on[-1] == (
            "sanitize", "memcheck", "racecheck", "initcheck",
        )
        subset = ExecutionConfig(sanitize=("memcheck",)).cache_key()
        assert subset != on

    def test_sanitize_fatal_not_in_cache_key(self):
        assert (
            ExecutionConfig(sanitize=True).cache_key()
            == ExecutionConfig(
                sanitize=True, sanitize_fatal=False
            ).cache_key()
        )

    def test_env_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert apply_sanitize_env(
            ExecutionConfig()
        ).sanitize_checks == ("memcheck", "racecheck", "initcheck")
        monkeypatch.setenv("REPRO_SANITIZE", "memcheck,racecheck")
        assert apply_sanitize_env(
            ExecutionConfig()
        ).sanitize_checks == ("memcheck", "racecheck")
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert apply_sanitize_env(ExecutionConfig()).sanitize_checks == ()

    def test_env_alias_resolved_by_device(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        device = Device(config=scalar_config())
        assert device.sanitizer is not None
        assert device.memory.sanitizer is device.sanitizer

    def test_env_alias_skips_dispatch_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        config = ExecutionConfig(interpreter_mode="dispatch")
        assert apply_sanitize_env(config) is config


# -- shadow state / allocation registry ------------------------------------


class TestShadowMemory:
    def make(self, quarantine_bytes=1 << 20):
        memory = MemorySystem(size=1 << 20)
        sanitizer = KernelSanitizer(
            memory, quarantine_bytes=quarantine_bytes
        )
        memory.sanitizer = sanitizer
        return memory, sanitizer

    def test_redzones_surround_payload(self):
        memory, sanitizer = self.make()
        base = memory.allocate(64)
        shadow = sanitizer.shadow.shadow
        assert (shadow[base : base + 64] == UNINITIALIZED).all()
        assert (shadow[base - 16 : base] == REDZONE).all()
        assert (shadow[base + 64 : base + 80] == REDZONE).all()

    def test_oob_classified_with_allocation(self):
        memory, sanitizer = self.make()
        base = memory.allocate(64, label="buf")
        kind, record, detail = sanitizer.shadow.check(
            base + 64, 4, True, want_init=False
        )
        assert kind == "oob"
        assert record.label == "buf"
        assert "past the end" in detail

    def test_use_after_free_quarantined(self):
        memory, sanitizer = self.make()
        base = memory.allocate(64)
        memory.write_array(base, np.zeros(16, dtype=np.float32))
        memory.free(base, 64)
        assert sanitizer.shadow.quarantined(base)
        kind, record, detail = sanitizer.shadow.check(
            base, 4, False, want_init=False
        )
        assert kind == "use-after-free"
        assert record.freed

    def test_null_page_invalid(self):
        memory, sanitizer = self.make()
        kind, record, detail = sanitizer.shadow.check(
            0, 4, False, want_init=False
        )
        assert kind == "invalid"
        assert "null" in detail

    def test_uninit_read_then_clean_after_write(self):
        memory, sanitizer = self.make()
        base = memory.allocate(64)
        finding = sanitizer.shadow.check(base, 4, False, want_init=True)
        assert finding is not None and finding[0] == "uninit-read"
        # A guest write marks the bytes initialized...
        assert sanitizer.shadow.check(
            base, 4, True, want_init=False
        ) is None
        assert sanitizer.shadow.check(
            base, 4, False, want_init=True
        ) is None
        # ...and host copies do too.
        memory.write_array(
            base + 16, np.zeros(4, dtype=np.float32)
        )
        assert sanitizer.shadow.check(
            base + 16, 16, False, want_init=True
        ) is None

    def test_free_validations(self):
        memory, sanitizer = self.make()
        base = memory.allocate(64)
        with pytest.raises(MemoryFault, match="never returned"):
            memory.free(base + 4, 60)
        with pytest.raises(MemoryFault, match="size mismatch"):
            memory.free(base, 32)
        memory.free(base, 64)
        with pytest.raises(MemoryFault, match="double free"):
            memory.free(base, 64)

    def test_quarantine_eviction_returns_span(self):
        memory, sanitizer = self.make(quarantine_bytes=256)
        bases = [memory.allocate(64) for _ in range(4)]
        for base in bases:
            memory.free(base, 64)
        shadow = sanitizer.shadow
        # 64 payload + 16 + 16 redzone = 96-byte spans; a 256-byte cap
        # holds at most two, so the earliest frees were evicted.
        assert shadow._quarantine_bytes <= 256
        evicted = bases[0]
        assert (
            shadow.shadow[evicted : evicted + 64] == UNADDRESSABLE
        ).all()
        assert shadow.find_record(evicted) is None

    def test_resegment_marks_interior_redzones(self):
        memory, sanitizer = self.make()
        base = memory.allocate(96, kind="local")
        sanitizer.shadow.resegment(base, 16, 32)
        shadow = sanitizer.shadow.shadow
        for start in range(base, base + 96, 32):
            assert (shadow[start : start + 16] == UNINITIALIZED).all()
            assert (shadow[start + 16 : start + 32] == REDZONE).all()
        kind, record, detail = sanitizer.shadow.check(
            base + 16, 4, True, want_init=False
        )
        assert kind == "oob"
        assert "segment" in detail

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "free"]),
                st.integers(min_value=1, max_value=300),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_registry_stress_invariants(self, ops):
        """Random allocate/free interleavings: live payloads never
        overlap, redzones are never handed out, and freed payloads are
        quarantined (reuse delayed) until evicted."""
        memory = MemorySystem(size=1 << 20)
        sanitizer = KernelSanitizer(memory, quarantine_bytes=2048)
        memory.sanitizer = sanitizer
        shadow = sanitizer.shadow
        live = {}
        for action, value in ops:
            if action == "alloc":
                base = memory.allocate(value)
                # Fresh payload: addressable, uninitialized — so it
                # cannot overlap any live payload (INITIALIZED bytes
                # would show), any redzone, or quarantined bytes.
                assert (
                    shadow.shadow[base : base + value] == UNINITIALIZED
                ).all()
                for other, other_size in live.items():
                    assert (
                        base + value <= other
                        or other + other_size <= base
                    )
                live[base] = value
                memory.write_array(
                    base, np.full(value, 0x5A, dtype=np.uint8)
                )
            elif live:
                base = sorted(live)[value % len(live)]
                size = live.pop(base)
                memory.free(base, size)
                record = shadow._records.get(base)
                if record is not None:
                    assert record.freed
                    assert (
                        shadow.shadow[base : base + size] == QUARANTINE
                    ).all()
        # Terminal invariants: every live payload still initialized,
        # every quarantined record's payload still fenced off.
        for base, size in live.items():
            assert (
                shadow.shadow[base : base + size] == INITIALIZED
            ).all()
        assert shadow._quarantine_bytes <= 2048
        for record in shadow._quarantine:
            span = shadow.shadow[
                record.base : record.base + record.size
            ]
            assert (span == QUARANTINE).all()


# -- arena satellites (coalescing, traffic counters) -----------------------


class TestArena:
    def test_interior_free_blocks_coalesce(self):
        memory = MemorySystem(size=1 << 16)
        a = memory.allocate(64)
        b = memory.allocate(64)
        guard = memory.allocate(16)
        brk = memory.bytes_allocated
        memory.free(a, 64)
        memory.free(b, 64)
        assert memory._free_blocks == [(a, 128)]
        # The coalesced region satisfies one 128-byte request without
        # growing the arena — two separate 64-byte holes could not.
        assert memory.allocate(128) == a
        assert memory.bytes_allocated == brk
        memory.free(guard, 16)

    def test_coalesce_absorbs_into_break(self):
        memory = MemorySystem(size=1 << 16)
        a = memory.allocate(64)
        b = memory.allocate(64)
        brk_before = memory.bytes_allocated
        memory.free(a, 64)
        memory.free(b, 64)  # merges with a's hole, then hits the break
        assert memory._free_blocks == []
        assert memory.bytes_allocated == brk_before - 128

    def test_host_copies_count_traffic(self):
        memory = MemorySystem(size=1 << 16)
        base = memory.allocate(256)
        stores, loads = memory.store_count, memory.load_count
        memory.write_array(base, np.zeros(32, dtype=np.float32))
        assert memory.store_count == stores + 32
        memory.read_array(base, np.float32, 32)
        assert memory.load_count == loads + 32


# -- caught faults (genuine, no injection) ---------------------------------


class TestCaughtFaults:
    def test_off_by_one_store_traps_with_coordinates(self):
        device = sanitized_device(FILL_PTX)
        out = device.malloc(16 * 4, label="out")
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("fill", grid=1, block=17, args=[out])
        info = excinfo.value.info
        assert info.cause_type == "SanitizerError"
        report = info.sanitizer
        assert report.kind == "oob"
        assert report.tid == (16, 0, 0)
        assert report.op_index >= 0 and report.block_label
        assert report.allocation.label == "out"
        assert "past the end" in report.message
        rendered = format_trap(excinfo.value)
        assert "sanitizer:" in rendered
        assert "'out'" in rendered

    def test_store_to_freed_buffer_traps(self):
        device = sanitized_device(FILL_PTX)
        out = device.malloc(32 * 4)
        device.free(out)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("fill", grid=1, block=8, args=[out])
        report = excinfo.value.info.sanitizer
        assert report.kind == "use-after-free"
        assert report.tid == (0, 0, 0)
        assert report.allocation.freed

    def test_null_pointer_traps_as_invalid(self):
        device = sanitized_device(FILL_PTX)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("fill", grid=1, block=4, args=[0])
        report = excinfo.value.info.sanitizer
        assert report.kind == "invalid"
        assert "null" in report.message

    def test_genuine_shared_race_detected(self):
        device = sanitized_device(RACY_PTX)
        out = device.malloc(4)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("racy", grid=1, block=4, args=[out])
        report = excinfo.value.info.sanitizer
        assert report.kind == "race"
        assert report.space == "shared"
        # Deterministic scalar order: tid 1's store conflicts with the
        # store tid 0 already logged in the same barrier interval.
        assert report.tid == (1, 0, 0)
        assert report.conflict.tid == (0, 0, 0)
        assert report.conflict.write
        assert report.op_index == report.conflict.op_index

    def test_barrier_ordered_sharing_is_clean(self):
        device = sanitized_device(SAFE_SHARED_PTX)
        out = device.malloc(16 * 4)
        device.launch("safeShared", grid=1, block=16, args=[out])
        values = out.read(np.uint32, 16)
        np.testing.assert_array_equal(
            values, np.arange(16, dtype=np.uint32) ^ 1
        )

    def test_uninit_read_caught_and_memset_clears_it(self):
        device = sanitized_device(SUM_PTX)
        src = device.malloc(16 * 4, label="never written")
        dst = device.malloc(4)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("sumAll", grid=1, block=1, args=[src, dst, 16])
        report = excinfo.value.info.sanitizer
        assert report.kind == "uninit-read"
        assert report.allocation.label == "never written"
        device.reset()
        device.memset(src, 0)
        device.launch("sumAll", grid=1, block=1, args=[src, dst, 16])
        assert dst.read(np.float32, 1)[0] == 0.0

    def test_memcheck_only_ignores_uninit(self):
        device = sanitized_device(SUM_PTX, checks=("memcheck",))
        src = device.malloc(16 * 4)
        dst = device.malloc(4)
        device.launch("sumAll", grid=1, block=1, args=[src, dst, 16])
        assert dst.read(np.float32, 1)[0] == 0.0


# -- injected faults (the CI fault matrix) ---------------------------------


class TestInjectedFaults:
    def _vecadd_buffers(self, device, n=16):
        a = device.upload(np.arange(n, dtype=np.float32))
        b = device.upload(np.ones(n, dtype=np.float32))
        c = device.malloc(n * 4, label="out")
        return a, b, c, n

    def test_injected_oob_caught_with_exact_coordinates(self):
        device = sanitized_device(VECADD_PTX)
        a, b, c, n = self._vecadd_buffers(device)
        with FaultInjector(device, seed=0) as inject:
            inject.arm("oob_within_arena", probability=1.0, allocation=c)
            with pytest.raises(KernelTrap) as excinfo:
                device.launch(
                    "vecAdd", grid=1, block=n, args=[a, b, c, n]
                )
        report = excinfo.value.info.sanitizer
        assert report.kind == "oob"
        assert report.ctaid == (0, 0, 0) and report.tid == (0, 0, 0)
        assert report.block_label and report.op_index >= 0
        assert report.allocation.label == "out"
        assert inject.fired["oob_within_arena"] == 1

    def test_injected_oob_silent_without_sanitizer(self):
        device = Device(config=scalar_config())
        device.register_module(VECADD_PTX)
        a, b, c, n = self._vecadd_buffers(device)
        pad = device.malloc(64)  # absorbs the redirected stores
        with FaultInjector(device, seed=0) as inject:
            inject.arm("oob_within_arena", probability=1.0, allocation=c)
            device.launch("vecAdd", grid=1, block=n, args=[a, b, c, n])
            assert inject.fired["oob_within_arena"] == n

    def test_injected_use_after_free_caught(self):
        device = sanitized_device(VECADD_PTX)
        a, b, c, n = self._vecadd_buffers(device)
        victim = device.malloc(n * 4, label="victim")
        device.free(victim)
        with FaultInjector(device, seed=0) as inject:
            inject.arm(
                "use_after_free",
                probability=1.0,
                allocation=a,
                freed=victim,
            )
            with pytest.raises(KernelTrap) as excinfo:
                device.launch(
                    "vecAdd", grid=1, block=n, args=[a, b, c, n]
                )
        report = excinfo.value.info.sanitizer
        assert report.kind == "use-after-free"
        assert report.tid == (0, 0, 0)
        assert report.allocation.label == "victim"
        assert report.allocation.freed

    def test_injected_use_after_free_silent_without_sanitizer(self):
        device = Device(config=scalar_config())
        device.register_module(VECADD_PTX)
        a, b, c, n = self._vecadd_buffers(device)
        victim = device.malloc(n * 4)
        device.free(victim)
        with FaultInjector(device, seed=0) as inject:
            inject.arm(
                "use_after_free",
                probability=1.0,
                allocation=a,
                freed=victim,
            )
            device.launch("vecAdd", grid=1, block=n, args=[a, b, c, n])
            assert inject.fired["use_after_free"] == n

    def test_injected_shared_race_caught(self):
        device = sanitized_device(REDUCE_PTX)
        src = device.upload(np.ones(64, dtype=np.float32))
        dst = device.malloc(4)
        with FaultInjector(device, seed=0) as inject:
            inject.arm("shared_race", probability=1.0)
            with pytest.raises(KernelTrap) as excinfo:
                device.launch("reduceK", grid=1, block=64, args=[src, dst])
        report = excinfo.value.info.sanitizer
        assert report.kind == "race"
        assert report.space == "shared"
        assert report.tid == (1, 0, 0)
        assert report.conflict.tid == (0, 0, 0)

    def test_injected_shared_race_silent_without_sanitizer(self):
        device = Device(config=scalar_config())
        device.register_module(REDUCE_PTX)
        src = device.upload(np.ones(64, dtype=np.float32))
        dst = device.malloc(4)
        with FaultInjector(device, seed=0) as inject:
            inject.arm("shared_race", probability=1.0)
            device.launch("reduceK", grid=1, block=64, args=[src, dst])
            assert inject.fired["shared_race"] > 0


# -- non-fatal accumulation ------------------------------------------------


class TestNonFatal:
    def test_findings_accumulate_on_statistics(self):
        device = sanitized_device(FILL_PTX, fatal=False)
        out = device.malloc(16 * 4, label="out")
        result = device.launch("fill", grid=1, block=20, args=[out])
        reports = result.statistics.sanitizer
        # Threads 16..19 all overflow at the same program point: one
        # deduplicated report with a bumped count.
        assert len(reports) == 1
        assert reports[0].kind == "oob"
        assert reports[0].count == 4
        assert "sanitizer" in result.statistics.report()
        assert "oob=4" in result.statistics.report()
        rendered = format_sanitizer_reports(reports)
        assert "reported 4 times" in rendered
        # The next launch starts a fresh accumulation.
        ok = device.malloc(16 * 4)
        clean = device.launch("fill", grid=1, block=16, args=[ok])
        assert clean.statistics.sanitizer == []

    def test_non_fatal_run_still_completes_correctly(self):
        device = sanitized_device(FILL_PTX, fatal=False)
        out = device.malloc(16 * 4)
        device.launch("fill", grid=1, block=17, args=[out])
        np.testing.assert_array_equal(
            out.read(np.uint32, 16), np.arange(16, dtype=np.uint32)
        )

    def test_max_reports_cap_suppresses(self):
        memory = MemorySystem(size=1 << 20)
        sanitizer = KernelSanitizer(memory, fatal=False, max_reports=2)
        memory.sanitizer = sanitizer
        from repro.sanitizer.reports import SanitizerReport

        for index in range(5):
            sanitizer._emit(
                SanitizerReport(
                    kind="oob",
                    kernel="k",
                    message="m",
                    address=index,
                    size=1,
                    op_index=index,
                )
            )
        assert len(sanitizer.reports) == 2
        assert sanitizer.suppressed == 3

    def test_statistics_merge_extends_reports(self):
        from repro.sanitizer.reports import SanitizerReport

        first = LaunchStatistics()
        first.sanitizer.append(
            SanitizerReport(
                kind="oob", kernel="k", message="m", address=0, size=1
            )
        )
        second = LaunchStatistics()
        second.merge(first)
        assert len(second.sanitizer) == 1

    def test_empty_report_rendering(self):
        assert "clean" in format_sanitizer_reports([])


# -- leak check ------------------------------------------------------------


class TestLeakCheck:
    def test_reset_lists_unfreed_device_buffers(self):
        device = sanitized_device(FILL_PTX)
        kept = device.malloc(64, label="kept")
        freed = device.malloc(64, label="freed")
        device.free(freed)
        device.reset()
        leaks = device.sanitizer.leak_reports
        labels = [leak.allocation.label for leak in leaks]
        assert "kept" in labels
        assert "freed" not in labels
        for leak in leaks:
            assert leak.kind == "leak"
            # Slabs/params/globals are runtime-owned, not leaks.
            assert leak.allocation.kind == "device"
        rendered = format_sanitizer_report(leaks[labels.index("kept")])
        assert "never freed" in rendered


# -- clean runs over real workloads ---------------------------------------


WORKLOADS_UNDER_TEST = (
    "throughput",  # Table 1
    "MatrixMul",
    "Reduction",
    "ScalarProd",
)


class TestWorkloadsClean:
    @pytest.mark.parametrize("name", WORKLOADS_UNDER_TEST)
    def test_sanitizer_clean_and_statistics_identical(self, name):
        """Zero false positives over real (shared-memory, barrier,
        divergent) workloads, and the checked lowering models the exact
        same machine: every statistic is bit-identical."""
        workload = get_workload(name)
        base = vectorized_config()
        checked = dataclasses.replace(
            base, sanitize=True, sanitize_fatal=False
        )
        plain = workload.run_on(base, scale=0.25)
        sanitized = workload.run_on(checked, scale=0.25)
        assert sanitized.correct
        stats_plain = plain.statistics
        stats_checked = sanitized.statistics
        assert stats_checked.sanitizer == []
        for field_name in (
            "kernel_cycles",
            "yield_cycles",
            "em_cycles",
            "instructions",
            "flops",
            "thread_entries",
            "warp_executions",
            "threads_launched",
            "warp_size_histogram",
            "yields_by_status",
        ):
            assert getattr(stats_checked, field_name) == getattr(
                stats_plain, field_name
            ), field_name


#: Diamond whose arms both store the thread's value to out[tid]
#: (different expressions): with one thread past the buffer end, the
#: overflow happens inside a melded region.
MELD_FILL_PTX = r"""
.version 2.3
.target sim
.entry meldFill (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<6>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mul.lo.u32 %r3, %r1, 3;
  st.global.u32 [%rd3], %r3;
  bra JOIN;
EVEN:
  add.u32 %r4, %r1, 7;
  st.global.u32 [%rd3], %r4;
JOIN:
  exit;
}
"""

#: Diamond whose arms both store to the *same* shared slot: a genuine
#: W-W race inside a (meldable) divergent region.
MELD_RACE_PTX = r"""
.version 2.3
.target sim
.entry meldRace (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  .shared .u32 sdata[16];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, sdata;
  and.b32 %r3, %r1, 1;
  setp.eq.u32 %p1, %r3, 0;
  @%p1 bra EVEN;
  mul.lo.u32 %r4, %r1, 3;
  st.shared.u32 [%r2], %r4;
  bra JOIN;
EVEN:
  add.u32 %r5, %r1, 7;
  st.shared.u32 [%r2], %r5;
JOIN:
  bar.sync 0;
  ld.shared.u32 %r6, [%r2];
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r6;
  exit;
}
"""


class TestMeldSanitizerParity:
    """Melding preserves sanitizer findings: accesses issued from a
    melded region report the same kind/address/size/space (and, for
    deterministic overflows, thread) as the divergent original."""

    def _run(self, source, kernel, meld, block, buffer_words, checks):
        config = dataclasses.replace(
            vectorized_config(4),
            meld=meld,
            sanitize=checks,
            sanitize_fatal=False,
        )
        device = Device(config=config)
        device.register_module(source)
        out = device.malloc(buffer_words * 4, label="out")
        result = device.launch(kernel, grid=1, block=block, args=[out])
        return result.statistics

    def test_memcheck_findings_match_across_meld(self, monkeypatch):
        monkeypatch.delenv("REPRO_MELD", raising=False)
        # 17 threads, 16-word buffer: exactly thread 16 overflows
        plain = self._run(
            MELD_FILL_PTX, "meldFill", False, 17, 16, ("memcheck",)
        )
        melded = self._run(
            MELD_FILL_PTX, "meldFill", True, 17, 16, ("memcheck",)
        )
        assert melded.melded_regions == 1
        assert plain.melded_regions == 0

        def sites(stats):
            return sorted(
                (
                    finding.kind,
                    finding.address,
                    finding.size,
                    finding.space,
                    finding.tid,
                    finding.count,
                )
                for finding in stats.sanitizer
            )

        assert sites(plain) == sites(melded)
        assert len(plain.sanitizer) == 1
        assert plain.sanitizer[0].kind == "oob"
        assert plain.sanitizer[0].tid == (16, 0, 0)

    def test_racecheck_findings_match_across_meld(self, monkeypatch):
        monkeypatch.delenv("REPRO_MELD", raising=False)
        plain = self._run(
            MELD_RACE_PTX, "meldRace", False, 8, 16, ("racecheck",)
        )
        melded = self._run(
            MELD_RACE_PTX, "meldRace", True, 8, 16, ("racecheck",)
        )
        assert melded.melded_regions == 1
        assert plain.melded_regions == 0

        def sites(stats):
            return sorted(
                {
                    (
                        finding.kind,
                        finding.address,
                        finding.size,
                        finding.space,
                    )
                    for finding in stats.sanitizer
                }
            )

        assert sites(plain), "race not detected without melding"
        assert sites(plain) == sites(melded)
        assert all(f.kind == "race" for f in plain.sanitizer)
