"""DCE / CSE / constant-folding / block-merge pass tests."""

import pytest

from repro.ir import (
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    Constant,
    ContextRead,
    Exit,
    IRFunction,
    Intrinsic,
    Load,
    Select,
    Store,
    UnaryOp,
    VirtualRegister,
    verify_function,
)
from repro.ptx.types import AddressSpace, DataType
from repro.transforms import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    merge_blocks,
    standard_cleanup_pipeline,
)


def reg(name, dtype=DataType.u32):
    return VirtualRegister(name=name, dtype=dtype)


def const(value, dtype=DataType.u32):
    return Constant(value, dtype)


def add(dst, a, b, dtype=DataType.u32):
    return BinaryOp(op="add", dtype=dtype, dst=dst, a=a, b=b)


def single_block(*instructions):
    function = IRFunction("f")
    block = function.add_block("entry")
    for instruction in instructions:
        block.append(instruction)
    if not block.is_terminated:
        block.append(Exit())
    return function


class TestDCE:
    def test_removes_unused_pure_instruction(self):
        function = single_block(add(reg("dead"), const(1), const(2)))
        assert eliminate_dead_code(function) == 1
        assert function.instruction_count() == 1

    def test_keeps_stores(self):
        function = single_block(
            Store(
                dtype=DataType.u32,
                space=AddressSpace.global_,
                base=const(0x100, DataType.u64),
                value=const(1),
            )
        )
        assert eliminate_dead_code(function) == 0

    def test_removes_chains_transitively(self):
        function = single_block(
            add(reg("a"), const(1), const(2)),
            add(reg("b"), reg("a"), const(3)),
        )
        assert eliminate_dead_code(function) == 2

    def test_keeps_values_used_by_terminator(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(
            Compare(
                op="eq", dtype=DataType.u32, dst=reg("p", DataType.pred),
                a=const(1), b=const(1),
            )
        )
        entry.append(
            CondBranch(
                predicate=reg("p", DataType.pred),
                taken="a", fallthrough="b",
            )
        )
        function.add_block("a").append(Exit())
        function.add_block("b").append(Exit())
        assert eliminate_dead_code(function) == 0

    def test_keeps_value_live_across_blocks(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(add(reg("x"), const(1), const(2)))
        entry.append(Branch("next"))
        next_block = function.add_block("next")
        next_block.append(
            Store(
                dtype=DataType.u32,
                space=AddressSpace.global_,
                base=const(0x100, DataType.u64),
                value=reg("x"),
            )
        )
        next_block.append(Exit())
        assert eliminate_dead_code(function) == 0

    def test_redefined_before_use_is_dead(self):
        function = single_block(
            add(reg("x"), const(1), const(2)),  # dead: overwritten
            add(reg("x"), const(3), const(4)),
            Store(
                dtype=DataType.u32,
                space=AddressSpace.global_,
                base=const(0x100, DataType.u64),
                value=reg("x"),
            ),
        )
        assert eliminate_dead_code(function) == 1

    def test_volatile_load_kept(self):
        function = single_block(
            Load(
                dtype=DataType.u32, dst=reg("x"),
                space=AddressSpace.global_,
                base=const(0x100, DataType.u64), volatile=True,
            )
        )
        assert eliminate_dead_code(function) == 0


class TestCSE:
    def _store(self, value):
        return Store(
            dtype=DataType.u32,
            space=AddressSpace.global_,
            base=const(0x100, DataType.u64),
            value=value,
        )

    def test_identical_expression_reused(self):
        function = single_block(
            add(reg("a"), reg("x"), const(1)),
            add(reg("b"), reg("x"), const(1)),
            self._store(reg("a")),
            self._store(reg("b")),
        )
        # provide a definition of x so the verifier is happy
        function.blocks["entry"].instructions.insert(
            0,
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7)),
        )
        assert eliminate_common_subexpressions(function) == 1
        verify_function(function)

    def test_commutative_operands_normalized(self):
        function = single_block(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7)),
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("y"),
                    a=const(9)),
            add(reg("a"), reg("x"), reg("y")),
            add(reg("b"), reg("y"), reg("x")),
            self._store(reg("a")),
            self._store(reg("b")),
        )
        assert eliminate_common_subexpressions(function) == 1

    def test_redefinition_invalidates(self):
        function = single_block(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7)),
            add(reg("a"), reg("x"), const(1)),
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(8)),
            add(reg("b"), reg("x"), const(1)),
            self._store(reg("a")),
            self._store(reg("b")),
        )
        assert eliminate_common_subexpressions(function) == 0

    def test_self_referential_not_recorded(self):
        # acc = acc + 1 twice must NOT collapse (the fma-chain bug).
        function = single_block(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("acc"),
                    a=const(0)),
            add(reg("acc"), reg("acc"), const(1)),
            add(reg("acc"), reg("acc"), const(1)),
            self._store(reg("acc")),
        )
        assert eliminate_common_subexpressions(function) == 0

    def test_context_reads_cse(self):
        function = single_block(
            ContextRead(field_name="tid.x", dtype=DataType.u32,
                        dst=reg("a")),
            ContextRead(field_name="tid.x", dtype=DataType.u32,
                        dst=reg("b")),
            self._store(reg("a")),
            self._store(reg("b")),
        )
        assert eliminate_common_subexpressions(function) == 1

    def test_loads_never_cse(self):
        function = single_block(
            Load(dtype=DataType.u32, dst=reg("a"),
                 space=AddressSpace.global_,
                 base=const(0x100, DataType.u64)),
            Load(dtype=DataType.u32, dst=reg("b"),
                 space=AddressSpace.global_,
                 base=const(0x100, DataType.u64)),
            self._store(reg("a")),
            self._store(reg("b")),
        )
        assert eliminate_common_subexpressions(function) == 0

    def test_dominating_block_expression_reused(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7))
        )
        entry.append(add(reg("a"), reg("x"), const(1)))
        entry.append(Branch("next"))
        next_block = function.add_block("next")
        next_block.append(add(reg("b"), reg("x"), const(1)))
        next_block.append(self._store(reg("a")))
        next_block.append(self._store(reg("b")))
        next_block.append(Exit())
        assert eliminate_common_subexpressions(function) == 1


class TestConstantFolding:
    def _fold_single(self, instruction):
        function = single_block(instruction)
        folds = fold_constants(function)
        return folds, function.blocks["entry"].instructions[0]

    def test_folds_integer_add(self):
        folds, folded = self._fold_single(
            add(reg("a"), const(2), const(3))
        )
        assert folds == 1
        assert folded.a.value == 5

    def test_wraps_to_type_domain(self):
        folds, folded = self._fold_single(
            add(reg("a"), const(0xFFFFFFFF), const(1))
        )
        assert folded.a.value == 0

    def test_folds_compare(self):
        folds, folded = self._fold_single(
            Compare(op="lt", dtype=DataType.u32,
                    dst=reg("p", DataType.pred),
                    a=const(1), b=const(2))
        )
        assert folds == 1
        assert folded.a.value is True

    def test_folds_select_with_constant_predicate(self):
        folds, folded = self._fold_single(
            Select(dtype=DataType.u32, dst=reg("a"),
                   a=const(10), b=const(20),
                   predicate=Constant(True, DataType.pred))
        )
        assert folds == 1
        assert folded.a.value == 10

    def test_folds_intrinsic(self):
        folds, folded = self._fold_single(
            Intrinsic(name="sqrt", dtype=DataType.f32,
                      dst=reg("a", DataType.f32),
                      args=[const(4.0, DataType.f32)])
        )
        assert folds == 1
        assert folded.a.value == 2.0

    def test_identity_add_zero(self):
        function = single_block(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7)),
            add(reg("a"), reg("x"), const(0)),
        )
        assert fold_constants(function) == 1
        simplified = function.blocks["entry"].instructions[1]
        assert isinstance(simplified, UnaryOp)
        assert simplified.a == reg("x")

    def test_multiply_by_zero(self):
        function = single_block(
            UnaryOp(op="mov", dtype=DataType.u32, dst=reg("x"),
                    a=const(7)),
            BinaryOp(op="mul", dtype=DataType.u32, dst=reg("a"),
                     a=reg("x"), b=const(0)),
        )
        assert fold_constants(function) == 1

    def test_division_by_zero_not_folded(self):
        folds, _ = self._fold_single(
            BinaryOp(op="div", dtype=DataType.u32, dst=reg("a"),
                     a=const(5), b=const(0))
        )
        assert folds == 0

    def test_vector_destinations_untouched(self):
        function = single_block(
            BinaryOp(op="add", dtype=DataType.u32,
                     dst=VirtualRegister("v", DataType.u32, width=4),
                     a=const(1), b=const(2))
        )
        function.warp_size = 4
        assert fold_constants(function) == 0


class TestBlockMerge:
    def test_merges_linear_chain(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(add(reg("a"), const(1), const(2)))
        entry.append(Branch("tail"))
        tail = function.add_block("tail")
        tail.append(add(reg("b"), const(3), const(4)))
        tail.append(Exit())
        assert merge_blocks(function) == 1
        assert "tail" not in function.blocks
        assert len(function.blocks["entry"].instructions) == 2

    def test_does_not_merge_shared_successor(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(
            CondBranch(predicate=Constant(True, DataType.pred),
                       taken="a", fallthrough="b")
        )
        a = function.add_block("a")
        a.append(Branch("join"))
        b = function.add_block("b")
        b.append(Branch("join"))
        function.add_block("join").append(Exit())
        assert merge_blocks(function) == 0

    def test_does_not_merge_entry_point_targets(self):
        function = IRFunction("f")
        entry = function.add_block("entry")
        entry.append(Branch("resume"))
        function.add_block("resume").append(Exit())
        function.add_entry_point("resume")
        assert merge_blocks(function) == 0

    def test_self_loop_not_merged(self):
        function = IRFunction("f")
        function.add_block("entry").append(Branch("entry"))
        assert merge_blocks(function) == 0


class TestPipeline:
    def test_pipeline_runs_and_verifies(self, vecadd_scalar_ir):
        pipeline = standard_cleanup_pipeline()
        pipeline.run(vecadd_scalar_ir)
        report = pipeline.statistics.report()
        assert "dce" in report

    def test_pipeline_statistics_accumulate(self, vecadd_scalar_ir):
        pipeline = standard_cleanup_pipeline()
        pipeline.run(vecadd_scalar_ir)
        assert pipeline.statistics.total_changes() >= 0
        assert len(pipeline.statistics.results) == 5
