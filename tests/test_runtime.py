"""Runtime tests: config, contexts, warp formation, barriers,
translation cache, launcher partitioning, statistics."""

import numpy as np
import pytest

from repro import (
    Device,
    ExecutionConfig,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from repro.errors import LaunchError, TranslationCacheError
from repro.ir import ResumeStatus
from repro.runtime import (
    LaunchGeometry,
    LaunchStatistics,
    ThreadContext,
    Warp,
    partition_ctas,
)
from tests.conftest import REDUCE_PTX, VECADD_PTX


class TestExecutionConfig:
    def test_default_matches_paper(self):
        config = ExecutionConfig()
        assert config.warp_sizes == (1, 2, 4)
        assert config.max_warp_size == 4

    def test_requires_scalar_specialization(self):
        with pytest.raises(ValueError):
            ExecutionConfig(warp_sizes=(2, 4))

    def test_requires_ascending_sizes(self):
        with pytest.raises(ValueError):
            ExecutionConfig(warp_sizes=(4, 1))

    def test_baseline_never_yields_at_branches(self):
        config = baseline_config()
        assert not config.yields_at_branches(1)
        assert not config.vectorized

    def test_dynamic_sub_maximal_yields(self):
        config = vectorized_config(4)
        assert config.yields_at_branches(1)
        assert config.yields_at_branches(2)
        assert not config.yields_at_branches(4)

    def test_static_formation_never_chases_reformation(self):
        config = static_tie_config(4)
        assert not config.yields_at_branches(1)
        assert not config.yields_at_branches(2)


class TestGeometry:
    def test_counts(self):
        geometry = LaunchGeometry(grid=(2, 3, 1), block=(8, 4, 1))
        assert geometry.cta_count == 6
        assert geometry.threads_per_cta == 32
        assert geometry.total_threads == 192

    def test_coordinate_roundtrip(self):
        geometry = LaunchGeometry(grid=(3, 2, 2), block=(4, 2, 2))
        seen = set()
        for linear in range(geometry.cta_count):
            seen.add(geometry.cta_coordinates(linear))
        assert len(seen) == 12

    def test_thread_coordinates(self):
        geometry = LaunchGeometry(grid=(1, 1, 1), block=(4, 2, 1))
        assert geometry.thread_coordinates(0) == (0, 0, 0)
        assert geometry.thread_coordinates(5) == (1, 1, 0)


class TestContexts:
    def test_linear_ids(self):
        context = ThreadContext(
            tid=(1, 2, 0), ntid=(4, 4, 1),
            ctaid=(1, 0, 0), nctaid=(2, 1, 1),
        )
        assert context.linear_tid == 9
        assert context.linear_ctaid == 1
        assert context.global_linear_id == 16 + 9

    def test_warp_validation(self):
        contexts = [
            ThreadContext(tid=(i, 0, 0), ntid=(4, 1, 1),
                          ctaid=(0, 0, 0), nctaid=(1, 1, 1))
            for i in range(2)
        ]
        warp = Warp(contexts=contexts)
        assert warp.validate()
        contexts[1].resume_point = 3
        assert not warp.validate()


class TestPartitioning:
    def test_even_partition(self):
        parts = partition_ctas(8, 4)
        assert [len(p) for p in parts] == [2, 2, 2, 2]

    def test_remainder_spread(self):
        parts = partition_ctas(10, 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_fewer_ctas_than_workers(self):
        parts = partition_ctas(2, 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_contiguous_coverage(self):
        parts = partition_ctas(7, 3)
        flattened = [cta for part in parts for cta in part]
        assert flattened == list(range(7))

    def test_invalid_worker_count(self):
        with pytest.raises(LaunchError):
            partition_ctas(4, 0)


class TestTranslationCache:
    def _device(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        return device

    def test_lazy_translation(self):
        device = self._device()
        stats = device.cache.statistics
        assert stats.translations == 0
        assert stats.disk_hits == 0
        device.cache.get("vecAdd", 4)
        # Exactly one materialization — compiled fresh, or loaded from
        # the persistent tier when REPRO_CACHE=1 primed it.
        assert stats.translations + stats.disk_hits == 1

    def test_cache_hits(self):
        device = self._device()
        first = device.cache.get("vecAdd", 4)
        second = device.cache.get("vecAdd", 4)
        assert first is second
        assert device.cache.statistics.hits == 1

    def test_unconfigured_width_rejected(self):
        device = self._device()
        with pytest.raises(TranslationCacheError):
            device.cache.get("vecAdd", 8)

    def test_unknown_kernel_rejected(self):
        device = self._device()
        with pytest.raises(TranslationCacheError):
            device.cache.get("nope", 4)

    def test_specialization_for(self):
        device = self._device()
        assert device.cache.specialization_for(1) == 1
        assert device.cache.specialization_for(3) == 2
        assert device.cache.specialization_for(4) == 4
        assert device.cache.specialization_for(100) == 4

    def test_scalar_ir_shared_across_widths(self):
        device = self._device()
        first = device.cache.scalar_ir("vecAdd")
        device.cache.get("vecAdd", 2)
        device.cache.get("vecAdd", 4)
        assert device.cache.scalar_ir("vecAdd") is first

    def test_instruction_counts_recorded(self):
        device = self._device()
        count = device.cache.instruction_count("vecAdd", 4)
        assert count > 0


class TestWarpFormationStatistics:
    def test_full_warps_when_block_multiple_of_width(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 256
        a = device.upload(np.zeros(n, dtype=np.float32))
        b = device.upload(np.zeros(n, dtype=np.float32))
        c = device.malloc(n * 4)
        result = device.launch(
            "vecAdd", grid=(4, 1, 1), block=(64, 1, 1),
            args=[a, b, c, n],
        )
        fractions = result.statistics.warp_size_fractions()
        assert fractions == {4: 1.0}

    def test_small_cta_caps_warp_size(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 8
        a = device.upload(np.zeros(n, dtype=np.float32))
        b = device.upload(np.zeros(n, dtype=np.float32))
        c = device.malloc(n * 4)
        result = device.launch(
            "vecAdd", grid=(4, 1, 1), block=(2, 1, 1),
            args=[a, b, c, n],
        )
        # CTAs of 2 threads -> warps of at most 2 (same-CTA formation)
        assert max(result.statistics.warp_size_histogram) == 2

    def test_barrier_yields_counted(self):
        device = Device(config=vectorized_config(4))
        device.register_module(REDUCE_PTX)
        data = np.random.default_rng(0).standard_normal(
            2 * 64
        ).astype(np.float32)
        src = device.upload(data)
        dst = device.malloc(2 * 4)
        result = device.launch(
            "reduceK", grid=(2, 1, 1), block=(64, 1, 1),
            args=[src, dst],
        )
        statistics = result.statistics
        assert statistics.barrier_yields > 0
        assert (
            statistics.yields_by_status[ResumeStatus.THREAD_EXIT] > 0
        )

    def test_threads_launched_counted(self):
        device = Device(config=baseline_config())
        device.register_module(VECADD_PTX)
        a = device.upload(np.zeros(64, dtype=np.float32))
        b = device.upload(np.zeros(64, dtype=np.float32))
        c = device.malloc(64 * 4)
        result = device.launch(
            "vecAdd", grid=(2, 1, 1), block=(32, 1, 1),
            args=[a, b, c, 64],
        )
        assert result.statistics.threads_launched == 64


class TestLaunchStatistics:
    def test_merge(self):
        first = LaunchStatistics(kernel_cycles=10, em_cycles=5)
        first.warp_size_histogram[4] = 3
        second = LaunchStatistics(kernel_cycles=20, yield_cycles=2)
        second.warp_size_histogram[4] = 1
        second.warp_size_histogram[1] = 2
        first.merge(second)
        assert first.kernel_cycles == 30
        assert first.warp_size_histogram == {4: 4, 1: 2}

    def test_cycle_fractions_sum_to_one(self):
        statistics = LaunchStatistics(
            kernel_cycles=50, yield_cycles=25, em_cycles=25
        )
        fractions = statistics.cycle_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_elapsed_is_max_worker(self):
        statistics = LaunchStatistics()
        statistics.worker_cycles = {0: 100, 1: 250, 2: 50}
        assert statistics.elapsed_cycles == 250

    def test_gflops(self):
        statistics = LaunchStatistics(flops=1000)
        statistics.worker_cycles = {0: 1000}
        assert statistics.gflops(1e9) == pytest.approx(1.0)

    def test_empty_statistics_are_safe(self):
        statistics = LaunchStatistics()
        assert statistics.average_warp_size == 0.0
        assert statistics.average_values_restored == 0.0
        assert statistics.warp_size_fractions() == {}


class TestLaunchErrors:
    def test_wrong_argument_count(self):
        device = Device()
        device.register_module(VECADD_PTX)
        with pytest.raises(LaunchError):
            device.launch("vecAdd", grid=1, block=32, args=[1, 2])

    def test_empty_grid_rejected(self):
        device = Device()
        device.register_module(VECADD_PTX)
        with pytest.raises(LaunchError):
            device.launch(
                "vecAdd", grid=0, block=32, args=[0, 0, 0, 0]
            )


class TestBarrierDeadlock:
    def test_partial_barrier_deadlock_detected(self):
        # Half the CTA exits before the barrier -> the other half can
        # never be released. With live-count tracking this would hang;
        # we require a LaunchError... unless live_counts releases them.
        source = """
.version 2.3
.target sim
.entry bad (.param .u32 unused)
{
  .reg .u32 %r<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  setp.lt.u32 %p1, %r1, 16;
  @%p1 bra WAIT;
  exit;
WAIT:
  bar.sync 0;
  exit;
}
"""
        device = Device(config=baseline_config())
        device.register_module(source)
        # Threads 0-15 wait; 16-31 exit. live_counts drops to 16 and
        # the barrier releases — CUDA leaves this undefined, we choose
        # the forgiving semantics. The launch must terminate.
        result = device.launch("bad", grid=1, block=32, args=[0])
        assert result.statistics.threads_launched == 32


class TestTracing:
    def test_trace_receives_warp_and_yield_events(self, rng):
        from repro import Device, vectorized_config
        import numpy as np

        device = Device(config=vectorized_config(4))
        device.register_module(REDUCE_PTX)
        events = []
        device.launcher.trace = lambda kind, payload: events.append(
            (kind, payload)
        )
        data = rng.standard_normal(64).astype(np.float32)
        src = device.upload(data)
        dst = device.malloc(4)
        device.launch(
            "reduceK", grid=(1, 1, 1), block=(64, 1, 1),
            args=[src, dst],
        )
        kinds = {kind for kind, _ in events}
        assert kinds == {"warp", "yield", "barrier_release"}
        warp_events = [p for k, p in events if k == "warp"]
        assert all(p["kernel"] == "reduceK" for p in warp_events)
        assert any(p["size"] == 4 for p in warp_events)
        yields = [p for k, p in events if k == "yield"]
        assert any(p["status"] == "barrier" for p in yields)

    def test_trace_disabled_by_default(self, rng):
        from repro import Device, baseline_config
        import numpy as np

        device = Device(config=baseline_config())
        device.register_module(VECADD_PTX)
        a = device.upload(np.zeros(32, dtype=np.float32))
        b = device.upload(np.zeros(32, dtype=np.float32))
        c = device.malloc(32 * 4)
        # No trace set: must simply not crash and keep trace None.
        device.launch("vecAdd", grid=1, block=32, args=[a, b, c, 32])
        assert device.launcher.trace is None
