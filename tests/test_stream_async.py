"""Streams, events, launch futures, and their sticky-error interplay.

The async path must preserve the synchronous path's semantics: FIFO
order within a stream, one kernel executing at a time device-wide, a
trap arriving through the future with full ``format_trap``
attribution and partial statistics, sticky-error fail-fast for work
queued behind a fault, and ``Device.reset()`` restoring the stream to
launch-ready."""

import numpy as np
import pytest

from repro import Device, Event, KernelTrap, LaunchFuture, Stream, format_trap
from repro.errors import LaunchError
from tests.conftest import VECADD_PTX

#: vecAdd variant whose unguarded store hits address zero: traps
#: deterministically on every backend without fault injection.
NULL_STORE_PTX = r"""
.version 2.3
.target sim

.entry nullStore (.param .u64 out, .param .u32 n)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<3>;
  .reg .f32 %f<2>;

  mov.u32 %r1, %tid.x;
  mov.u64 %rd1, 0;
  cvt.rn.f32.u32 %f1, %r1;
  st.global.f32 [%rd1], %f1;
  exit;
}
"""

#: In-place scale-and-bias over one buffer — non-commutative chain
#: steps make FIFO-order violations visible in the final values.
SCALE_BIAS_PTX = r"""
.version 2.3
.target sim

.entry scaleBias (.param .u64 data, .param .f32 scale,
                  .param .f32 bias, .param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.f32 %f2, [scale];
  fma.rn.f32 %f3, %f1, %f2, 0.0;
  ld.param.f32 %f2, [bias];
  add.f32 %f3, %f3, %f2;
  st.global.f32 [%rd3], %f3;
DONE:
  exit;
}
"""

N = 8


@pytest.fixture
def async_device():
    device = Device()
    device.register_module(VECADD_PTX)
    device.register_module(SCALE_BIAS_PTX)
    device.register_module(NULL_STORE_PTX)
    return device


def _buffers(device):
    a = device.upload(np.arange(N, dtype=np.float32))
    b = device.upload(np.arange(N, dtype=np.float32))
    c = device.malloc(4 * N)
    return a, b, c


class TestLaunchFuture:
    def test_result_matches_synchronous_launch(self, async_device):
        a, b, c = _buffers(async_device)
        sync_result = async_device.launch("vecAdd", 1, N, [a, b, c, N])
        future = async_device.launch_async("vecAdd", 1, N, [a, b, c, N])
        assert isinstance(future, LaunchFuture)
        result = future.result(timeout=60)
        assert future.done()
        assert result.kernel_name == "vecAdd"
        assert result.statistics.instructions == (
            sync_result.statistics.instructions
        )
        assert np.allclose(c.read(np.float32, N), np.arange(N) * 2)

    def test_exception_returns_none_on_success(self, async_device):
        a, b, c = _buffers(async_device)
        future = async_device.launch_async("vecAdd", 1, N, [a, b, c, N])
        assert future.exception(timeout=60) is None

    def test_submit_validates_dimensions(self, async_device):
        a, b, c = _buffers(async_device)
        with pytest.raises(LaunchError, match="grid has 4 dimensions"):
            async_device.launch_async(
                "vecAdd", (1, 1, 1, 1), N, [a, b, c, N]
            )

    def test_default_stream_created_lazily(self, async_device):
        assert async_device._default_stream is None
        stream = async_device.default_stream
        assert isinstance(stream, Stream)
        assert async_device.default_stream is stream


class TestStreamOrdering:
    def test_fifo_order_within_stream(self, async_device):
        """A non-commutative chain (x2, x2, +1s, x2 over x0=1 -> 10)
        only produces the right values when executed in FIFO order."""
        data = async_device.upload(np.ones(N, dtype=np.float32))
        ones = async_device.upload(np.ones(N, dtype=np.float32))
        stream = async_device.create_stream()
        futures = [
            stream.launch_async(
                "scaleBias", (1, 1, 1), (N, 1, 1), [data, 2.0, 0.0, N]
            ),
            stream.launch_async(
                "scaleBias", (1, 1, 1), (N, 1, 1), [data, 2.0, 0.0, N]
            ),
            stream.launch_async(
                "vecAdd", (1, 1, 1), (N, 1, 1), [data, ones, data, N]
            ),
            stream.launch_async(
                "scaleBias", (1, 1, 1), (N, 1, 1), [data, 2.0, 0.0, N]
            ),
        ]
        for future in futures:
            future.result(timeout=60)
        assert np.allclose(data.read(np.float32, N), 10.0)

    def test_streams_have_unique_names(self, async_device):
        names = {async_device.create_stream().name for _ in range(3)}
        assert len(names) == 3
        assert async_device.create_stream("mine").name == "mine"

    def test_synchronize_drains_stream(self, async_device):
        a, b, c = _buffers(async_device)
        stream = async_device.create_stream()
        for _ in range(4):
            stream.launch_async("vecAdd", 1, N, [a, b, c, N])
        stream.synchronize()
        assert stream.pending == 0
        assert np.allclose(c.read(np.float32, N), np.arange(N) * 2)

    def test_device_synchronize_covers_all_streams(self, async_device):
        a, b, c = _buffers(async_device)
        streams = [async_device.create_stream() for _ in range(3)]
        for stream in streams:
            stream.launch_async("vecAdd", 1, N, [a, b, c, N])
        async_device.synchronize()
        assert all(stream.pending == 0 for stream in streams)

    def test_sync_launch_drains_pending_async_work(self, async_device):
        """Legacy-stream semantics: a synchronous launch only runs
        after previously queued async work has completed."""
        data = async_device.upload(np.ones(N, dtype=np.float32))
        stream = async_device.create_stream()
        for _ in range(2):
            stream.launch_async(
                "scaleBias", (1, 1, 1), (N, 1, 1), [data, 2.0, 0.0, N]
            )
        async_device.launch(
            "scaleBias", (1, 1, 1), (N, 1, 1), [data, 1.0, 1.0, N]
        )
        assert np.allclose(data.read(np.float32, N), 5.0)

    def test_closed_stream_rejects_submissions(self, async_device):
        a, b, c = _buffers(async_device)
        stream = async_device.create_stream()
        stream.launch_async("vecAdd", 1, N, [a, b, c, N])
        stream.close()
        with pytest.raises(LaunchError, match="closed"):
            stream.launch_async("vecAdd", 1, N, [a, b, c, N])


class TestEvents:
    def test_record_and_synchronize(self, async_device):
        a, b, c = _buffers(async_device)
        stream = async_device.create_stream()
        stream.launch_async("vecAdd", 1, N, [a, b, c, N])
        event = stream.record()
        assert isinstance(event, Event)
        event.synchronize(timeout=60)
        assert event.query()
        assert np.allclose(c.read(np.float32, N), np.arange(N) * 2)

    def test_cross_stream_wait_event(self, async_device):
        """s2's launch reads what s1's launch wrote; wait_event makes
        the cross-stream dependency explicit."""
        data = async_device.upload(np.ones(N, dtype=np.float32))
        sink = async_device.malloc(4 * N)
        s1 = async_device.create_stream()
        s2 = async_device.create_stream()
        s1.launch_async(
            "scaleBias", (1, 1, 1), (N, 1, 1), [data, 3.0, 1.0, N]
        )
        event = s1.record()
        s2.wait_event(event)
        future = s2.launch_async(
            "vecAdd", (1, 1, 1), (N, 1, 1), [data, data, sink, N]
        )
        future.result(timeout=60)
        assert np.allclose(sink.read(np.float32, N), 8.0)

    def test_fresh_event_not_fired(self):
        event = Event()
        assert not event.query()
        with pytest.raises(LaunchError, match="timed out"):
            event.synchronize(timeout=0.01)


class TestAsyncStickyErrors:
    def test_trap_surfaces_through_future_with_attribution(
        self, async_device
    ):
        out = async_device.malloc(4 * N)
        future = async_device.launch_async(
            "nullStore", (1, 1, 1), (4, 1, 1), [out, N]
        )
        error = future.exception(timeout=60)
        assert isinstance(error, KernelTrap)
        with pytest.raises(KernelTrap):
            future.result()
        # Full trap attribution, exactly like the synchronous path.
        assert error.info is not None
        assert error.info.kernel == "nullStore"
        report = format_trap(error)
        assert "nullStore" in report
        assert "cta" in report.lower()
        # Partial statistics ride on the trap.
        assert error.statistics is not None

    def test_trap_sets_device_sticky_error(self, async_device):
        out = async_device.malloc(4 * N)
        future = async_device.launch_async(
            "nullStore", (1, 1, 1), (4, 1, 1), [out, N]
        )
        assert isinstance(future.exception(timeout=60), KernelTrap)
        assert isinstance(async_device.last_error, KernelTrap)

    def test_launch_async_fails_fast_on_faulted_device(
        self, async_device
    ):
        a, b, c = _buffers(async_device)
        async_device.launch_async(
            "nullStore", (1, 1, 1), (4, 1, 1), [c, N]
        ).exception(timeout=60)
        with pytest.raises(LaunchError, match="failed state"):
            async_device.launch_async("vecAdd", 1, N, [a, b, c, N])

    def test_work_queued_behind_trap_fails_fast(self, async_device):
        """Launches already queued on the stream when an earlier one
        traps must fail (fail-fast LaunchError or the trap's shadow),
        never hang or silently succeed."""
        a, b, c = _buffers(async_device)
        stream = async_device.create_stream()
        trap_future = stream.launch_async(
            "nullStore", (1, 1, 1), (4, 1, 1), [c, N]
        )
        behind = [
            stream.launch_async("vecAdd", 1, N, [a, b, c, N])
            for _ in range(2)
        ]
        assert isinstance(trap_future.exception(timeout=60), KernelTrap)
        for future in behind:
            error = future.exception(timeout=60)
            assert isinstance(error, LaunchError)

    def test_reset_restores_stream_to_launch_ready(self, async_device):
        a, b, c = _buffers(async_device)
        stream = async_device.create_stream()
        stream.launch_async(
            "nullStore", (1, 1, 1), (4, 1, 1), [c, N]
        ).exception(timeout=60)
        assert async_device.last_error is not None
        async_device.reset()
        assert async_device.last_error is None
        future = stream.launch_async("vecAdd", 1, N, [a, b, c, N])
        future.result(timeout=60)
        assert np.allclose(c.read(np.float32, N), np.arange(N) * 2)
