"""PTX -> scalar IR translation tests."""

import pytest

from repro.errors import TranslationError
from repro.frontend import analyze_kernel, translate_kernel
from repro.ir import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Compare,
    CondBranch,
    ContextRead,
    Convert,
    Exit,
    FusedMultiplyAdd,
    Intrinsic,
    Load,
    Reduce,
    Select,
    Store,
    UnaryOp,
    verify_function,
)
from repro.ptx import parse
from repro.ptx.types import AddressSpace, DataType

HEADER = ".version 2.3\n.target sim\n"


_INITS = (
    "  mov.u32 %r1, 1; mov.u32 %r2, 2; mov.u32 %r3, 3;"
    " mov.u32 %r4, 4;\n"
    "  mov.u64 %rd1, 64;\n"
    "  mov.f32 %f1, 1.0; mov.f32 %f2, 2.0; mov.f32 %f3, 3.0;"
    " mov.f32 %f4, 4.0;\n"
    "  setp.eq.u32 %p1, %r1, %r1;\n"
)


def translate(body, params="", decls="", name="k"):
    source = (
        HEADER
        + f".entry {name} ({params})\n{{\n"
        + "  .reg .u32 %r<10>;\n  .reg .u64 %rd<10>;\n"
        + "  .reg .f32 %f<10>;\n  .reg .pred %p<10>;\n"
        + decls
        + _INITS
        + body
        + "\n  exit;\n}\n"
    )
    function = translate_kernel(parse(source).kernel(name))
    verify_function(function)
    return function


def instructions_of(function, kind):
    return [
        inst for inst in function.instructions()
        if isinstance(inst, kind)
    ]


class TestBasicSelection:
    def test_special_register_becomes_context_read(self):
        function = translate("mov.u32 %r1, %tid.x;")
        reads = instructions_of(function, ContextRead)
        assert reads[0].field_name == "tid.x"

    def test_mad_lo_becomes_mul_add(self):
        function = translate("mad.lo.u32 %r1, %r2, %r3, %r4;")
        ops = [i.op for i in instructions_of(function, BinaryOp)]
        assert ops == ["mul", "add"]

    def test_float_mad_becomes_fma(self):
        function = translate("mad.f32 %f1, %f2, %f3, %f4;")
        assert instructions_of(function, FusedMultiplyAdd)

    def test_mul_wide_converts_operands(self):
        function = translate("mul.wide.u32 %rd1, %r1, 4;")
        converts = instructions_of(function, Convert)
        assert len(converts) == 2
        multiply = instructions_of(function, BinaryOp)[0]
        assert multiply.dtype is DataType.u64

    def test_mul_hi(self):
        function = translate("mul.hi.u32 %r1, %r2, %r3;")
        assert instructions_of(function, BinaryOp)[0].op == "mulhi"

    def test_shr_signedness(self):
        signed = translate("shr.s32 %r1, %r2, 3;")
        unsigned = translate("shr.u32 %r1, %r2, 3;")
        assert instructions_of(signed, BinaryOp)[0].op == "ashr"
        assert instructions_of(unsigned, BinaryOp)[0].op == "lshr"

    def test_setp_becomes_compare(self):
        function = translate("setp.lt.u32 %p1, %r1, %r2;")
        compare = instructions_of(function, Compare)[-1]
        assert compare.op == "lt"

    def test_selp_becomes_select(self):
        function = translate("selp.f32 %f1, %f2, %f3, %p1;")
        assert instructions_of(function, Select)

    def test_set_produces_compare_plus_select(self):
        function = translate("set.gt.u32.f32 %r1, %f1, %f2;")
        assert instructions_of(function, Compare)
        select = instructions_of(function, Select)[-1]
        # integer true value is all-ones
        assert select.a.value == 0xFFFFFFFF

    def test_transcendental_becomes_intrinsic(self):
        function = translate("sqrt.approx.f32 %f1, %f2;")
        assert instructions_of(function, Intrinsic)[0].name == "sqrt"

    def test_vote_becomes_reduce(self):
        function = translate("vote.any.pred %p2, %p1;")
        assert instructions_of(function, Reduce)[0].op == "any"

    def test_membar_is_noop(self):
        with_fence = translate("membar.gl;")
        without = translate("")
        assert (
            with_fence.instruction_count() == without.instruction_count()
        )


class TestMemory:
    def test_param_load_uses_symbol_offset(self):
        function = translate(
            "ld.param.u32 %r1, [n];", params=".param .u32 n"
        )
        load = instructions_of(function, Load)[0]
        assert load.space is AddressSpace.param
        assert load.base.value == 0

    def test_second_param_offset(self):
        function = translate(
            "ld.param.u32 %r1, [n];",
            params=".param .u64 a, .param .u32 n",
        )
        load = instructions_of(function, Load)[0]
        assert load.base.value == 8

    def test_shared_symbol_is_segment_offset(self):
        function = translate(
            "mov.u32 %r1, tile;\n  st.shared.f32 [%r1], %f1;",
            decls="  .shared .f32 tile[16];\n",
        )
        store = instructions_of(function, Store)[0]
        assert store.space is AddressSpace.shared

    def test_vector_load_expands(self):
        function = translate(
            "ld.global.v4.f32 {%f1, %f2, %f3, %f4}, [%rd1];"
        )
        loads = instructions_of(function, Load)
        assert [load.offset for load in loads] == [0, 4, 8, 12]

    def test_vector_store_expands(self):
        function = translate(
            "st.global.v2.f32 [%rd1+16], {%f1, %f2};"
        )
        stores = instructions_of(function, Store)
        assert [store.offset for store in stores] == [16, 20]

    def test_const_resolves_to_global_space(self):
        source = (
            HEADER
            + ".const .f32 lut[2] = { 1.0, 2.0 };\n"
            + ".entry k () {\n  .reg .u64 %rd<4>;\n"
            + "  .reg .f32 %f<2>;\n"
            + "  mov.u64 %rd1, lut;\n"
            + "  ld.const.f32 %f1, [%rd1];\n  exit;\n}"
        )
        kernel = parse(source).kernel("k")
        function = translate_kernel(
            kernel, global_symbols={"lut": 0x1000}
        )
        load = instructions_of(function, Load)[0]
        assert load.space is AddressSpace.global_
        movs = [
            i for i in instructions_of(function, UnaryOp)
            if i.op == "mov"
        ]
        assert movs[0].a.value == 0x1000

    def test_unresolved_module_global_raises(self):
        source = (
            HEADER
            + ".global .u32 counter;\n"
            + ".entry k () {\n  .reg .u64 %rd<2>;\n"
            + "  mov.u64 %rd1, counter;\n  exit;\n}"
        )
        with pytest.raises(TranslationError):
            translate_kernel(parse(source).kernel("k"))

    def test_atom_becomes_atomic_rmw(self):
        function = translate("atom.global.add.u32 %r1, [%rd1], 1;")
        atomic = instructions_of(function, AtomicRMW)[0]
        assert atomic.op == "add"
        assert atomic.dst is not None

    def test_red_has_no_destination(self):
        function = translate("red.global.add.u32 [%rd1], %r1;")
        assert instructions_of(function, AtomicRMW)[0].dst is None


class TestControlFlow:
    def test_unconditional_branch(self):
        function = translate("bra L;\nL:")
        assert "L" in function.blocks

    def test_guarded_branch_becomes_cond_branch(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n  @%p1 bra L;\nL:"
        )
        branches = instructions_of(function, CondBranch)
        assert branches[0].taken == "L"

    def test_negated_guard_inserts_not(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n  @!%p1 bra L;\nL:"
        )
        nots = [
            i for i in instructions_of(function, UnaryOp)
            if i.op == "not"
        ]
        assert nots

    def test_barrier_splits_block(self):
        function = translate("bar.sync 0;")
        barriers = instructions_of(function, BarrierTerm)
        assert len(barriers) == 1
        assert barriers[0].successor in function.blocks

    def test_exit_everywhere(self):
        function = translate("")
        assert instructions_of(function, Exit)

    def test_unreachable_code_kept_in_detached_block(self):
        function = translate("bra L;\n  add.u32 %r1, %r2, %r3;\nL:")
        # the dead add lives in a detached block; IR stays verifiable
        assert any(
            label.startswith("dead") for label in function.blocks
        )


class TestPredicationLowering:
    def test_guarded_arith_becomes_select(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n"
            "  @%p1 add.u32 %r3, %r3, 1;"
        )
        selects = instructions_of(function, Select)
        assert len(selects) == 1
        # select folds back into the original destination
        assert selects[0].dst.name == "r3"

    def test_guarded_store_becomes_diamond(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n"
            "  @%p1 st.global.u32 [%rd1], %r3;"
        )
        assert instructions_of(function, CondBranch)
        assert any(
            label.startswith("pred_then") for label in function.blocks
        )

    def test_guarded_load_becomes_diamond(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n"
            "  @%p1 ld.global.u32 %r3, [%rd1];"
        )
        assert instructions_of(function, CondBranch)

    def test_guarded_exit_becomes_diamond(self):
        function = translate(
            "setp.eq.u32 %p1, %r1, %r2;\n  @%p1 exit;"
        )
        exits = instructions_of(function, Exit)
        assert len(exits) >= 2


class TestAnalysis:
    def test_vecadd_analysis(self, vecadd_module):
        analysis = analyze_kernel(vecadd_module.kernel("vecAdd"))
        assert analysis.static_instructions == 19
        assert analysis.potential_divergence_sites == 1
        assert not analysis.is_statically_convergent
        assert analysis.barrier_count == 0

    def test_barrier_counting(self):
        source = (
            HEADER
            + ".entry k () {\n  bar.sync 0;\n  bar.sync 0;\n  exit;\n}"
        )
        analysis = analyze_kernel(parse(source).kernel("k"))
        assert analysis.barrier_count == 2
        assert analysis.has_barriers

    def test_convergent_kernel_detected(self):
        source = HEADER + ".entry k () {\n  exit;\n}"
        analysis = analyze_kernel(parse(source).kernel("k"))
        assert analysis.is_statically_convergent

    def test_opcode_histogram(self, vecadd_module):
        analysis = analyze_kernel(vecadd_module.kernel("vecAdd"))
        assert analysis.opcode_histogram["add"] == 4
        assert analysis.opcode_histogram["ld"] == 6
