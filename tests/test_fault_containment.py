"""Fault containment: structured traps, sticky errors, the launch
watchdog, degradation fallbacks, barrier-deadlock reporting, and the
seeded fault-injection harness."""

import numpy as np
import pytest

from repro import (
    BarrierDeadlock,
    Device,
    ExecutionConfig,
    KernelTrap,
    LaunchTimeout,
    baseline_config,
    format_timeout,
    format_trap,
    vectorized_config,
)
from repro.errors import LaunchError, MemoryFault
from repro.runtime.cache_store import CacheStore
from repro.runtime.traps import ProgramPoint, TrapInfo
from repro.testing import FaultInjector, fault_seed

from tests.conftest import REDUCE_PTX, VECADD_PTX

#: Writes tid to out + tid * 64MiB: thread 0 lands in the buffer,
#: every later thread is past the arena end — a deterministic
#: out-of-bounds store independent of arena layout.
OOB_PTX = r"""
.version 2.3
.target sim
.entry oob (.param .u64 out)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, 67108864;
  mul.wide.u32 %rd1, %r1, %r2;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r1;
  exit;
}
"""

#: Counts to n (u32): with n = 0xffffffff the loop is effectively
#: infinite and only the watchdog can end the launch.
SPIN_PTX = r"""
.version 2.3
.target sim
.entry spin (.param .u32 n, .param .u64 out)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  ld.param.u32 %r2, [n];
  mov.u32 %r1, 0;
LOOP:
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra LOOP;
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r1;
  exit;
}
"""

FOREVER = 0xFFFFFFFF


def _oob_device(config=None):
    device = Device(config=config or vectorized_config(4))
    device.register_module(OOB_PTX)
    return device


def _vecadd_launch(device, n=256, grid=2, block=128):
    a = np.arange(n, dtype=np.float32)
    b = np.ones(n, dtype=np.float32)
    da = device.upload(a)
    db = device.upload(b)
    dc = device.malloc(n * 4)
    device.launch("vecAdd", grid=grid, block=block, args=[da, db, dc, n])
    out = dc.read(np.float32, n)
    np.testing.assert_allclose(out, a + b)
    for allocation in (da, db, dc):
        device.free(allocation)


class TestKernelTrap:
    def test_oob_store_raises_structured_trap(self):
        device = _oob_device()
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("oob", grid=1, block=64, args=[buffer])
        trap = excinfo.value
        message = str(trap)
        assert "oob" in message
        assert "MemoryFault" in message
        assert "cta=" in message and "tid=" in message
        assert "block" in message and "instruction" in message
        info = trap.info
        assert isinstance(info, TrapInfo)
        assert info.kernel == "oob"
        assert info.block_label is not None
        assert info.instruction_index >= 0
        assert info.instruction is not None
        assert info.faulting_lanes, "no lane marked as faulting"
        fault = info.faulting_lanes[0]
        # Thread 0 lands in the buffer; thread 1 is the first to
        # reach past the arena end.
        assert fault.tid == (1, 0, 0)
        assert fault.ctaid == (0, 0, 0)
        assert info.cause_type == "MemoryFault"

    def test_trap_in_dispatch_mode_matches(self):
        device = _oob_device(
            ExecutionConfig(
                warp_sizes=(1, 2, 4), interpreter_mode="dispatch"
            )
        )
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("oob", grid=1, block=64, args=[buffer])
        info = excinfo.value.info
        assert info.block_label is not None
        assert info.instruction_index >= 0
        assert info.faulting_lanes[0].tid == (1, 0, 0)

    def test_format_trap_renders_report(self):
        device = _oob_device()
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("oob", grid=1, block=64, args=[buffer])
        report = format_trap(excinfo.value)
        assert "== kernel trap: oob ==" in report
        assert "cause" in report and "MemoryFault" in report
        assert "lanes:" in report
        assert "<- FAULT" in report
        assert "registers" in report
        assert "program ctr" in report

    def test_trap_counts_in_statistics(self):
        device = _oob_device()
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("oob", grid=1, block=64, args=[buffer])
        stats = excinfo.value.statistics
        assert stats.traps == 1
        assert "traps=1" in stats.report()


class TestStickyErrors:
    def test_fault_is_sticky_until_reset(self):
        device = _oob_device()
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap):
            device.launch("oob", grid=1, block=64, args=[buffer])
        assert isinstance(device.last_error, KernelTrap)
        with pytest.raises(LaunchError, match="failed state"):
            device.launch("oob", grid=1, block=4, args=[buffer])
        device.reset()
        assert device.last_error is None
        result = device.launch("oob", grid=1, block=1, args=[buffer])
        assert result.statistics.threads_launched == 1
        assert buffer.read(np.uint32, 1)[0] == 0

    def test_trap_reset_relaunch_does_not_grow_arena(self):
        device = _oob_device()
        device.register_module(VECADD_PTX)
        buffer = device.malloc(16)
        # First cycle reserves slabs; measure after it.
        with pytest.raises(KernelTrap):
            device.launch("oob", grid=1, block=64, args=[buffer])
        device.reset()
        _vecadd_launch(device)
        settled = device.memory.bytes_allocated
        for _ in range(3):
            with pytest.raises(KernelTrap):
                device.launch("oob", grid=1, block=64, args=[buffer])
            device.reset()
            _vecadd_launch(device)
            assert device.memory.bytes_allocated == settled

    def test_launch_after_trap_produces_correct_results(self):
        device = _oob_device()
        device.register_module(VECADD_PTX)
        buffer = device.malloc(16)
        with pytest.raises(KernelTrap):
            device.launch("oob", grid=1, block=64, args=[buffer])
        device.reset()
        # The cache still serves clean specializations and the pooled
        # warp state holds no residue of the trapped warp.
        _vecadd_launch(device)


class TestWatchdog:
    def test_cycle_budget_terminates_infinite_kernel(self):
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4), max_kernel_cycles=50_000
            )
        )
        device.register_module(SPIN_PTX)
        out = device.malloc(16)
        with pytest.raises(LaunchTimeout) as excinfo:
            device.launch("spin", grid=1, block=4, args=[FOREVER, out])
        timeout = excinfo.value
        assert "cycle budget" in str(timeout)
        assert timeout.kernel == "spin"
        assert timeout.program_points
        point = timeout.program_points[0]
        assert isinstance(point, ProgramPoint)
        assert "cta=" in str(timeout) and "tid=" in str(timeout)
        assert excinfo.value.statistics.watchdog_timeouts == 1
        assert "== launch timeout: spin ==" in format_timeout(timeout)

    def test_cycle_budget_is_deterministic(self):
        def run_once():
            device = Device(
                config=ExecutionConfig(
                    warp_sizes=(1, 2, 4), max_kernel_cycles=50_000
                )
            )
            device.register_module(SPIN_PTX)
            out = device.malloc(16)
            with pytest.raises(LaunchTimeout) as excinfo:
                device.launch(
                    "spin", grid=1, block=4, args=[FOREVER, out]
                )
            return (
                str(excinfo.value),
                excinfo.value.statistics.instructions,
            )

        assert run_once() == run_once()

    def test_wall_clock_deadline_terminates_infinite_kernel(self):
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4), launch_timeout_s=0.1
            )
        )
        device.register_module(SPIN_PTX)
        out = device.malloc(16)
        with pytest.raises(LaunchTimeout) as excinfo:
            device.launch("spin", grid=1, block=4, args=[FOREVER, out])
        assert "wall-clock deadline" in str(excinfo.value)
        assert excinfo.value.program_points

    def test_watchdog_spares_finite_kernels(self):
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4),
                max_kernel_cycles=10_000_000,
                launch_timeout_s=60.0,
            )
        )
        device.register_module(VECADD_PTX)
        _vecadd_launch(device)

    def test_device_stays_usable_after_timeout(self):
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4), max_kernel_cycles=50_000
            )
        )
        device.register_module(SPIN_PTX)
        device.register_module(VECADD_PTX)
        out = device.malloc(16)
        with pytest.raises(LaunchTimeout):
            device.launch("spin", grid=1, block=4, args=[FOREVER, out])
        assert isinstance(device.last_error, LaunchTimeout)
        device.reset()
        _vecadd_launch(device)


class TestDegradation:
    def _degraded_device(self, injector_seed=0, width=8):
        device = Device(config=vectorized_config(8))
        device.register_module(VECADD_PTX)
        injector = FaultInjector(device, seed=injector_seed)
        injector.arm("vectorization_failure", width=width)
        return device, injector

    def test_failed_width_falls_back_to_narrower(self):
        device, injector = self._degraded_device(width=8)
        with injector:
            _vecadd_launch(device)
        cache = device.cache.statistics
        assert cache.degradations == 1
        kernel, failed, fallback, reason = cache.degradation_events[0]
        assert kernel == "vecAdd"
        assert failed == 8
        assert fallback == 4
        assert "injected vectorization failure" in reason
        assert 8 in device.cache.degraded_widths("vecAdd")

    def test_degraded_warps_counted_in_launch_statistics(self):
        device, injector = self._degraded_device(width=8)
        with injector:
            a = np.arange(256, dtype=np.float32)
            b = np.ones(256, dtype=np.float32)
            da, db = device.upload(a), device.upload(b)
            dc = device.malloc(256 * 4)
            result = device.launch(
                "vecAdd", grid=2, block=128, args=[da, db, dc, 256]
            )
            np.testing.assert_allclose(
                dc.read(np.float32, 256), a + b
            )
        stats = result.statistics
        assert stats.degraded_warps > 0
        assert stats.warp_size_histogram.get(8, 0) == 0
        assert f"degraded warps={stats.degraded_warps}" in stats.report()

    def test_all_vector_widths_degrade_to_scalar(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("vectorization_failure", width=0)
            _vecadd_launch(device)
            cache = device.cache.statistics
            assert cache.degradations == 2  # 4 -> 2 -> 1
            assert device.cache.degraded_widths("vecAdd") == {4, 2}

    def test_invalidate_clears_degradation_marks(self):
        device, injector = self._degraded_device(width=8)
        with injector:
            _vecadd_launch(device)
        assert device.cache.degraded_widths("vecAdd")
        device.cache.invalidate("vecAdd")
        assert not device.cache.degraded_widths("vecAdd")
        # With the injector restored, width 8 builds again.
        _vecadd_launch(device)
        assert device.cache.statistics.degradations == 1

    def test_scalar_failure_propagates(self):
        device = Device(config=baseline_config())
        device.register_module(VECADD_PTX)
        original = device.cache._build_specialization

        def broken(kernel_name, warp_size):
            from repro.errors import VectorizationError

            raise VectorizationError("nothing builds")

        device.cache._build_specialization = broken
        device.cache.store = None
        with pytest.raises(Exception, match="nothing builds"):
            _vecadd_launch(device)
        device.cache._build_specialization = original


class TestBarrierDeadlock:
    def test_starved_barrier_reports_waiting_threads(self):
        device = Device(config=vectorized_config(4))
        device.register_module(REDUCE_PTX)
        src = device.upload(np.ones(64, dtype=np.float32))
        dst = device.malloc(4)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("barrier_starvation")
            with pytest.raises(BarrierDeadlock) as excinfo:
                device.launch(
                    "reduceK", grid=1, block=64, args=[src, dst]
                )
        deadlock = excinfo.value
        message = str(deadlock)
        assert "barrier deadlock" in message
        assert "reduceK" in message
        assert "cta=" in message and "tid=" in message
        assert "entry=" in message
        assert deadlock.waiting
        assert all(
            point.state == "barrier" for point in deadlock.waiting
        )
        assert isinstance(deadlock, LaunchError)  # hierarchy preserved


class TestFaultInjection:
    def test_seed_defaults_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "1234")
        assert fault_seed() == 1234
        device = Device()
        assert FaultInjector(device).seed == 1234
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert fault_seed() == 0

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector(Device(), seed=0).arm("nonexistent")

    def test_injected_memory_fault_traps(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=3) as injector:
            injector.arm("memory_fault", probability=1.0, kind="store")
            with pytest.raises(KernelTrap) as excinfo:
                _vecadd_launch(device)
            assert injector.fired["memory_fault"] >= 1
        assert "injected fault" in str(excinfo.value)
        assert excinfo.value.info.block_label is not None
        # Restored: the same device computes correctly afterwards.
        device.reset()
        _vecadd_launch(device)

    def test_injected_interpreter_error_traps_without_pc(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("interpreter_error")
            with pytest.raises(KernelTrap) as excinfo:
                _vecadd_launch(device)
        info = excinfo.value.info
        assert info.cause == "injected interpreter fault"
        assert info.block_label is None
        assert info.instruction_index == -1

    def test_identical_seeds_reproduce_identical_faults(self):
        def run(seed):
            device = Device(config=vectorized_config(4))
            device.register_module(VECADD_PTX)
            with FaultInjector(device, seed=seed) as injector:
                injector.arm(
                    "memory_fault", probability=0.05, kind="both"
                )
                try:
                    _vecadd_launch(device)
                    outcome = "completed"
                except KernelTrap as trap:
                    outcome = str(trap)
                return outcome, dict(injector.fired)

        first = run(42)
        second = run(42)
        different = run(43)
        assert first == second
        assert first != different or first[0] == "completed"

    def test_environment_seeded_soak(self):
        """Runs under any ``$REPRO_FAULT_SEED`` (the CI fault matrix):
        whatever launches the seed chooses to break, the fault is
        contained and the device recovers."""
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        for _ in range(3):
            with FaultInjector(device) as injector:
                injector.arm(
                    "memory_fault", probability=0.01, kind="both"
                )
                try:
                    _vecadd_launch(device)
                except KernelTrap as trap:
                    assert trap.info is not None
                    assert trap.statistics.traps == 1
            device.reset()
            device.cache.invalidate("vecAdd")
            _vecadd_launch(device)

    def test_slow_warp_trips_wall_clock_watchdog(self):
        device = Device(
            config=ExecutionConfig(
                warp_sizes=(1, 2, 4), launch_timeout_s=0.05
            )
        )
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("slow_warp", probability=1.0, delay_s=0.06)
            with pytest.raises(LaunchTimeout) as excinfo:
                _vecadd_launch(device)
        assert "wall-clock deadline" in str(excinfo.value)
        assert excinfo.value.program_points

    def test_cache_corruption_recovers_by_recompiling(self, tmp_path):
        store = CacheStore(directory=str(tmp_path))
        warmup = Device(
            config=vectorized_config(4), cache_store=store
        )
        warmup.register_module(VECADD_PTX)
        warmup.warm("vecAdd")
        assert store.entries(), "warm-up wrote no cache entries"

        device = Device(config=vectorized_config(4), cache_store=store)
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("cache_corruption", probability=1.0)
            _vecadd_launch(device)
            assert injector.fired["cache_corruption"] >= 1
        stats = device.cache.statistics
        assert stats.disk_errors >= 1
        assert stats.translations >= 1  # recompiled, not crashed

    def test_cache_corruption_requires_store(self):
        device = Device(config=vectorized_config(4))
        device.cache.store = None
        injector = FaultInjector(device, seed=0)
        with pytest.raises(ValueError, match="persistent cache store"):
            injector.arm("cache_corruption")

    def test_restore_reinstates_original_behavior(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        original_load = device.memory.load
        original_execute = device.interpreter.execute
        injector = FaultInjector(device, seed=0)
        injector.arm("memory_fault", kind="load")
        injector.arm("interpreter_error", probability=0.0)
        assert device.memory.load is not original_load
        injector.restore()
        assert device.memory.load == original_load
        assert device.interpreter.execute == original_execute
        _vecadd_launch(device)


class TestRobustnessReporting:
    def test_device_report_includes_degradations(self):
        device = Device()
        assert "degradations=0" in device.statistics_report()

    def test_launch_report_includes_robustness_line(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        a = np.arange(64, dtype=np.float32)
        da = device.upload(a)
        db = device.upload(a)
        dc = device.malloc(64 * 4)
        result = device.launch(
            "vecAdd", grid=1, block=64, args=[da, db, dc, 64]
        )
        report = result.statistics.report()
        assert "robustness" in report
        assert "traps=0" in report
        assert "watchdog=0" in report

    def test_bench_report_lists_degradation_events(self):
        from repro.bench.reporting import format_cache_statistics

        device = Device(config=vectorized_config(8))
        device.register_module(VECADD_PTX)
        with FaultInjector(device, seed=0) as injector:
            injector.arm("vectorization_failure", width=8)
            _vecadd_launch(device)
        rendered = format_cache_statistics(device.cache.statistics)
        assert "degradations: 1" in rendered
        assert "ws=8 -> ws=4" in rendered


#: Divergent diamond whose arms both store — the odd arm far past the
#: arena end. The stores align, so the melding pass merges the region;
#: the melded store must still trap with the faulting thread's own
#: coordinates.
MELD_OOB_PTX = r"""
.version 2.3
.target sim
.entry moob (.param .u64 out)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .pred %p<2>;
  mov.u32 %r1, %tid.x;
  ld.param.u64 %rd1, [out];
  and.b32 %r2, %r1, 1;
  setp.eq.u32 %p1, %r2, 0;
  @%p1 bra EVEN;
  mov.u32 %r3, 67108864;
  mul.wide.u32 %rd2, %r1, %r3;
  add.u64 %rd3, %rd1, %rd2;
  st.global.u32 [%rd3], %r1;
  bra JOIN;
EVEN:
  mov.u32 %r4, 4;
  mul.wide.u32 %rd4, %r1, %r4;
  add.u64 %rd5, %rd1, %rd4;
  st.global.u32 [%rd5], %r1;
JOIN:
  exit;
}
"""


class TestMeldTrapConformance:
    """Melding preserves diagnostics: a fault inside a melded arm
    traps with the same kernel/CTA/thread coordinates as the
    divergent original."""

    def _trap(self, meld):
        from dataclasses import replace

        config = replace(vectorized_config(4), meld=meld)
        device = Device(config=config)
        device.register_module(MELD_OOB_PTX)
        buffer = device.malloc(256)
        with pytest.raises(KernelTrap) as excinfo:
            device.launch("moob", grid=1, block=64, args=[buffer])
        return excinfo.value

    def test_melded_arm_fault_keeps_coordinates(self, monkeypatch):
        # the meld-off baseline must really be off, even when the
        # suite runs under REPRO_MELD=1 (the CI meld leg)
        monkeypatch.delenv("REPRO_MELD", raising=False)
        plain = self._trap(meld=False)
        melded = self._trap(meld=True)
        # the melding pass actually fired on the meld run
        assert melded.statistics.melded_regions == 1
        assert plain.statistics.melded_regions == 0
        assert melded.info.kernel == plain.info.kernel == "moob"
        assert melded.info.cause_type == plain.info.cause_type
        plain_lane = plain.info.faulting_lanes[0]
        melded_lane = melded.info.faulting_lanes[0]
        assert melded_lane.tid == plain_lane.tid
        assert melded_lane.ctaid == plain_lane.ctaid
        # thread 1 (first odd thread) is the first out-of-bounds store
        assert melded_lane.tid == (1, 0, 0)
