"""Regression tests for the PTX scalar-semantics bugfixes that rode
along with the array backend: shift-count clamping (PTX shifts drain,
they do not wrap mod N), saturating float->integer ``cvt`` in every
rounding mode (NaN converts to 0, out-of-range saturates to the
destination bounds), and scoped numpy error state (importing and
running repro must never mutate the host process's ``np.geterr()``).

Every semantics case runs in both interpreter modes — the closure
lowering and the dict-dispatch reference must agree bit-for-bit.
"""

import numpy as np
import pytest

from repro.ir import BinaryOp, Convert, Exit, IRFunction, Store, Yield
from repro.ir.values import Constant, VirtualRegister
from repro.machine import Interpreter, MemorySystem, sandybridge
from repro.machine.interpreter import INTERPRETER_MODES, guest_errstate
from repro.ptx.types import AddressSpace, DataType
from repro.runtime.context import ThreadContext, Warp


def reg(name, dtype=DataType.u32, width=1):
    return VirtualRegister(name=name, dtype=dtype, width=width)


def const(value, dtype=DataType.u32):
    return Constant(value, dtype)


def make_context(tid=0):
    return ThreadContext(
        tid=(tid, 0, 0),
        ntid=(32, 1, 1),
        ctaid=(0, 0, 0),
        nctaid=(1, 1, 1),
        shared_base=0,
        local_base=0,
    )


def run_block(build, mode, memory):
    """Build one block with ``build(block)``, execute one scalar warp
    under the given interpreter mode."""
    machine = sandybridge()
    interpreter = Interpreter(machine, memory, mode=mode)
    function = IRFunction("t", warp_size=1)
    block = function.add_block("entry")
    build(block)
    if not block.is_terminated:
        block.append(Yield(status=3))
    executable = interpreter.load_function(function)
    warp = Warp(contexts=[make_context()])
    interpreter.execute(executable, warp, param_base=0)


# ---------------------------------------------------------------------------
# Shift clamping
# ---------------------------------------------------------------------------


class TestShiftClamping:
    """PTX ISA: "SHL: shift amounts greater than the register width N
    are clamped to N" — a numpy shift would wrap mod N instead."""

    def _shift(self, mode, op, dtype, a, b):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(8)

        def build(block):
            block.append(
                BinaryOp(op=op, dtype=dtype, dst=reg("r", dtype),
                         a=const(a, dtype), b=const(b, DataType.u32))
            )
            block.append(
                Store(dtype=dtype, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("r", dtype))
            )

        run_block(build, mode, memory)
        return memory.load(dtype, out)

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("count", [31, 32, 33, 255])
    def test_shl_u32_drains_to_zero(self, mode, count):
        expected = (1 << count) & 0xFFFFFFFF if count < 32 else 0
        assert self._shift(
            mode, "shl", DataType.u32, 1, count
        ) == expected

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("count", [31, 32, 33, 255])
    def test_shr_u32_drains_to_zero(self, mode, count):
        expected = 0xFFFFFFFF >> count if count < 32 else 0
        assert self._shift(
            mode, "lshr", DataType.u32, 0xFFFFFFFF, count
        ) == expected

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("count", [31, 32, 33, 255])
    def test_shr_s32_drains_to_sign_fill(self, mode, count):
        # arithmetic shift of a negative value clamps to all-ones
        assert self._shift(
            mode, "ashr", DataType.s32, -16, count
        ) == -1

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("count", [63, 64, 65, 255])
    def test_shl_u64_drains_to_zero(self, mode, count):
        expected = (1 << count) & (2**64 - 1) if count < 64 else 0
        assert self._shift(
            mode, "shl", DataType.u64, 1, count
        ) == expected

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    def test_in_range_shifts_unchanged(self, mode):
        assert self._shift(mode, "shl", DataType.u32, 3, 4) == 48
        assert self._shift(mode, "lshr", DataType.u32, 48, 4) == 3
        assert self._shift(mode, "ashr", DataType.s32, -48, 4) == -3


# ---------------------------------------------------------------------------
# Saturating float -> integer cvt
# ---------------------------------------------------------------------------


ROUNDING_MODES = ("rni", "rzi", "rmi", "rpi")


class TestSaturatingConvert:
    """PTX float->integer ``cvt``: round, then saturate to the
    destination range; NaN converts to 0 (the sm_20+ semantics). A
    plain numpy ``astype`` wraps modulo 2**N and is undefined for NaN.
    """

    def _cvt(self, mode, rounding, dst_type, src_type, value):
        memory = MemorySystem(1 << 16)
        out = memory.allocate(8)

        def build(block):
            target = reg("i", dst_type)
            block.append(
                Convert(dst_type=dst_type, src_type=src_type,
                        dst=target, src=const(value, src_type),
                        rounding=rounding)
            )
            block.append(
                Store(dtype=dst_type, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=target)
            )

        run_block(build, mode, memory)
        return memory.load(dst_type, out)

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("rounding", ROUNDING_MODES)
    def test_nan_converts_to_zero(self, mode, rounding):
        assert self._cvt(
            mode, rounding, DataType.s32, DataType.f32, float("nan")
        ) == 0

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("rounding", ROUNDING_MODES)
    def test_overflow_saturates_high(self, mode, rounding):
        assert self._cvt(
            mode, rounding, DataType.s32, DataType.f32, 1e30
        ) == 2**31 - 1
        assert self._cvt(
            mode, rounding, DataType.s32, DataType.f32, float("inf")
        ) == 2**31 - 1

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("rounding", ROUNDING_MODES)
    def test_overflow_saturates_low(self, mode, rounding):
        assert self._cvt(
            mode, rounding, DataType.s32, DataType.f32, -1e30
        ) == -(2**31)
        assert self._cvt(
            mode, rounding, DataType.s32, DataType.f32, float("-inf")
        ) == -(2**31)

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    @pytest.mark.parametrize("rounding", ROUNDING_MODES)
    def test_unsigned_negative_saturates_to_zero(self, mode, rounding):
        assert self._cvt(
            mode, rounding, DataType.u32, DataType.f32, -7.5
        ) == 0

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    def test_rounding_direction(self, mode):
        # -1.5: rni ties-to-even -> -2, rzi -> -1, rmi -> -2, rpi -> -1
        cases = {"rni": -2, "rzi": -1, "rmi": -2, "rpi": -1}
        for rounding, expected in cases.items():
            assert self._cvt(
                mode, rounding, DataType.s32, DataType.f32, -1.5
            ) == expected
        # 2.5 ties-to-even rounds down to 2
        assert self._cvt(
            mode, "rni", DataType.s32, DataType.f32, 2.5
        ) == 2

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    def test_s64_bounds_saturate(self, mode):
        # float64(2**63 - 1) rounds up to 2**63: the cutoff must still
        # saturate instead of overflowing the cast
        assert self._cvt(
            mode, "rzi", DataType.s64, DataType.f64, 1e300
        ) == 2**63 - 1
        assert self._cvt(
            mode, "rzi", DataType.s64, DataType.f64, -1e300
        ) == -(2**63)

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    def test_in_range_values_exact(self, mode):
        assert self._cvt(
            mode, "rzi", DataType.s32, DataType.f32, 123.75
        ) == 123
        assert self._cvt(
            mode, "rzi", DataType.u64, DataType.f64, 2.0**40
        ) == 2**40


# ---------------------------------------------------------------------------
# Scoped numpy error state
# ---------------------------------------------------------------------------


class TestGuestErrstate:
    def test_guest_errstate_scopes_and_restores(self):
        before = np.geterr()
        with guest_errstate():
            state = np.geterr()
            assert state["over"] == "ignore"
            assert state["invalid"] == "ignore"
            assert state["divide"] == "ignore"
        assert np.geterr() == before

    @pytest.mark.parametrize("mode", INTERPRETER_MODES)
    def test_execution_leaves_host_errstate_alone(self, mode):
        before = np.geterr()
        memory = MemorySystem(1 << 16)
        out = memory.allocate(4)

        def build(block):
            # division by zero + overflow: would warn/raise outside the
            # guest scope under strict host settings
            block.append(
                BinaryOp(op="div", dtype=DataType.u32, dst=reg("a"),
                         a=const(7), b=const(0))
            )
            block.append(
                BinaryOp(op="add", dtype=DataType.u32, dst=reg("b"),
                         a=const(0xFFFFFFFF), b=const(2))
            )
            block.append(
                Store(dtype=DataType.u32, space=AddressSpace.global_,
                      base=const(out, DataType.u64), value=reg("b"))
            )

        run_block(build, mode, memory)
        assert np.geterr() == before
        assert memory.load(DataType.u32, out) == 1
