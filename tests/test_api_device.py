"""Device API tests: module registration, memory management, argument
packing, launches."""

import numpy as np
import pytest

from repro import Device, vectorized_config
from repro.errors import LaunchError, PTXValidationError
from tests.conftest import VECADD_PTX

PARAM_ECHO_PTX = """
.version 2.3
.target sim
.entry echoParams (.param .u64 out, .param .u32 a, .param .s32 b,
                   .param .f32 c, .param .u64 d, .param .f32 taps[3])
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<6>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra DONE;
  ld.param.u64 %rd1, [out];
  ld.param.u32 %r2, [a];
  st.global.u32 [%rd1], %r2;
  ld.param.s32 %r3, [b];
  st.global.u32 [%rd1+4], %r3;
  ld.param.f32 %f1, [c];
  st.global.f32 [%rd1+8], %f1;
  ld.param.u64 %rd2, [d];
  st.global.u64 [%rd1+16], %rd2;
  ld.param.f32 %f2, [taps];
  ld.param.f32 %f3, [taps+4];
  ld.param.f32 %f4, [taps+8];
  add.f32 %f5, %f2, %f3;
  add.f32 %f5, %f5, %f4;
  st.global.f32 [%rd1+24], %f5;
DONE:
  exit;
}
"""


class TestModuleRegistration:
    def test_register_text(self, device):
        module = device.register_module(VECADD_PTX)
        assert "vecAdd" in module.kernels

    def test_register_parsed_module(self, device, vecadd_module):
        device.register_module(vecadd_module)
        assert device.cache.kernel("vecAdd") is not None

    def test_invalid_module_rejected_eagerly(self, device):
        bad = (
            ".version 2.3\n.target sim\n"
            ".entry broken () {\n  bra NOWHERE;\n}"
        )
        with pytest.raises(PTXValidationError):
            device.register_module(bad)

    def test_const_variables_materialized(self, device):
        source = (
            ".version 2.3\n.target sim\n"
            ".const .f32 lut[2] = { 1.5, 2.5 };\n"
            ".entry k () { exit; }"
        )
        device.register_module(source)
        # initializer written into the arena
        symbols = device.cache._global_symbols
        address = symbols["lut"]
        values = device.memory.read_array(address, np.float32, 2)
        assert list(values) == [1.5, 2.5]


class TestMemoryManagement:
    def test_upload_and_read(self, device, rng):
        data = rng.standard_normal(100).astype(np.float32)
        buffer = device.upload(data)
        assert np.array_equal(buffer.read(np.float32, 100), data)

    def test_memset(self, device):
        buffer = device.malloc(64)
        device.memset(buffer, 0xAB)
        assert np.all(buffer.read(np.uint8, 64) == 0xAB)

    def test_allocations_are_disjoint(self, device):
        first = device.malloc(100)
        second = device.malloc(100)
        assert (
            first.address + first.size <= second.address
            or second.address + second.size <= first.address
        )

    def test_allocation_int_conversion(self, device):
        buffer = device.malloc(16)
        assert int(buffer) == buffer.address


class TestArgumentPacking:
    def test_all_parameter_kinds(self, device):
        device.register_module(PARAM_ECHO_PTX)
        out = device.malloc(32)
        pointer = device.malloc(16)
        device.launch(
            "echoParams",
            grid=1,
            block=1,
            args=[out, 42, -17, 2.5, pointer, [0.5, 1.0, 1.5]],
        )
        from repro.ptx.types import DataType

        raw32 = out.read(np.uint32, 8)
        assert raw32[0] == 42
        assert raw32[1] == np.uint32(np.int32(-17).view(np.uint32))
        assert out.read(np.float32, 8)[2] == 2.5
        stored_pointer = device.memory.load(
            DataType.u64, out.address + 16
        )
        assert stored_pointer == pointer.address
        assert out.read(np.float32, 8)[6] == 3.0

    def test_wrong_array_length_rejected(self, device):
        device.register_module(PARAM_ECHO_PTX)
        out = device.malloc(32)
        with pytest.raises(LaunchError):
            device.launch(
                "echoParams",
                grid=1,
                block=1,
                args=[out, 1, 2, 3.0, 0, [1.0, 2.0]],  # needs 3 taps
            )

    def test_int_accepted_for_pointer(self, device, rng):
        device.register_module(VECADD_PTX)
        data = rng.standard_normal(32).astype(np.float32)
        a = device.upload(data)
        b = device.upload(data)
        c = device.malloc(32 * 4)
        device.launch(
            "vecAdd", grid=1, block=32,
            args=[a.address, b.address, c.address, 32],
        )
        assert np.allclose(c.read(np.float32, 32), data * 2)


class TestDimNormalization:
    def test_scalar_dims(self, device, rng):
        device.register_module(VECADD_PTX)
        data = rng.standard_normal(64).astype(np.float32)
        a = device.upload(data)
        b = device.upload(data)
        c = device.malloc(64 * 4)
        device.launch("vecAdd", grid=2, block=32, args=[a, b, c, 64])
        assert np.allclose(c.read(np.float32, 64), data * 2)

    def test_tuple_dims_padded(self, device, rng):
        device.register_module(VECADD_PTX)
        data = rng.standard_normal(64).astype(np.float32)
        a = device.upload(data)
        b = device.upload(data)
        c = device.malloc(64 * 4)
        device.launch(
            "vecAdd", grid=(2,), block=(32,), args=[a, b, c, 64]
        )
        assert np.allclose(c.read(np.float32, 64), data * 2)


class TestReporting:
    def test_statistics_report(self, device):
        device.register_module(VECADD_PTX)
        report = device.statistics_report()
        assert "modules=1" in report

    def test_launch_result_repr_and_metrics(self, device, rng):
        device.register_module(VECADD_PTX)
        data = rng.standard_normal(64).astype(np.float32)
        a = device.upload(data)
        b = device.upload(data)
        c = device.malloc(64 * 4)
        result = device.launch(
            "vecAdd", grid=2, block=32, args=[a, b, c, 64]
        )
        assert "vecAdd" in repr(result)
        assert result.elapsed_seconds > 0
        assert result.gflops >= 0
