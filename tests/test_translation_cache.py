"""Translation-cache subsystem tests: content-addressed keys, precise
invalidation (re-registration + global-symbol updates), the persistent
disk tier (config isolation, corruption recovery, eviction,
cold-process reuse), warm-up, observability, and the execution-manager
memory fixes (slab reuse, live-region zeroing)."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import Device, ExecutionConfig, vectorized_config
from repro.errors import TranslationCacheError
from repro.runtime.cache_store import SCHEMA_VERSION, CacheStore
from repro.transforms.vectorize import assign_spill_slots
from tests.conftest import VECADD_PTX

#: vecAdd with the add replaced by a multiply — same name, same
#: signature, different behaviour. The staleness regression swaps
#: between this and VECADD_PTX.
VECMUL_PTX = VECADD_PTX.replace("add.f32 %f3, %f1, %f2;",
                                "mul.f32 %f3, %f1, %f2;")

GLOBAL_SCALE_PTX = r"""
.version 2.3
.target sim
.global .f32 scale;
.entry scaled (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mov.u64 %rd1, scale;
  ld.global.f32 %f1, [%rd1];
  mul.wide.u32 %rd2, %r4, 4;
  ld.param.u64 %rd3, [src];
  add.u64 %rd4, %rd3, %rd2;
  ld.global.f32 %f2, [%rd4];
  mul.f32 %f3, %f1, %f2;
  ld.param.u64 %rd5, [dst];
  add.u64 %rd6, %rd5, %rd2;
  st.global.f32 [%rd6], %f3;
DONE:
  exit;
}
"""


def _isolated_config(**overrides) -> ExecutionConfig:
    return ExecutionConfig(**overrides)


def _run_vecadd(device, n=64):
    a = device.upload(np.arange(n, dtype=np.float32))
    b = device.upload(np.full(n, 2.0, dtype=np.float32))
    c = device.malloc(n * 4)
    result = device.launch(
        "vecAdd", grid=(1, 1, 1), block=(n, 1, 1), args=[a, b, c, n]
    )
    return c.read(np.float32, n), result


@pytest.fixture(autouse=True)
def _no_ambient_disk_cache(monkeypatch):
    """Tests here construct their stores explicitly; strip the CI
    matrix's environment enablement so counters are deterministic."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestStalenessInvalidation:
    """Satellite 1: re-registration must never serve stale code."""

    def test_reregister_modified_kernel_executes_new_code(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        added, _ = _run_vecadd(device)
        assert np.allclose(added, np.arange(64) + 2.0)
        # Re-register the same kernel name with different behaviour.
        device.register_module(VECMUL_PTX)
        multiplied, _ = _run_vecadd(device)
        assert np.allclose(multiplied, np.arange(64) * 2.0), (
            "stale specialization served after re-registration"
        )

    def test_reregistration_bumps_generation_and_counts(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        device.warm("vecAdd")
        assert device.cache.generation("vecAdd") == 1
        fingerprint = device.cache.fingerprint("vecAdd")
        device.register_module(VECMUL_PTX)
        assert device.cache.generation("vecAdd") == 2
        assert device.cache.fingerprint("vecAdd") != fingerprint
        # scalar IR + one specialization per configured width dropped
        assert device.cache.statistics.invalidations == 1 + len(
            device.config.warp_sizes
        )
        assert device.cache.cached_specializations() == []

    def test_identical_reregistration_keeps_cache(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        device.warm("vecAdd")
        specializations = device.cache.cached_specializations()
        device.register_module(VECADD_PTX)
        assert device.cache.generation("vecAdd") == 1
        assert device.cache.statistics.invalidations == 0
        assert device.cache.cached_specializations() == specializations

    def test_explicit_invalidate(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        device.warm("vecAdd")
        translations = device.cache.statistics.translations
        dropped = device.cache.invalidate("vecAdd")
        assert dropped == 1 + len(device.config.warp_sizes)
        assert device.cache.generation("vecAdd") == 2
        device.warm("vecAdd")
        assert device.cache.statistics.translations == 2 * translations

    def test_global_symbol_update_invalidates_referencing_kernel(self):
        device = Device(config=vectorized_config(4))
        device.register_module(GLOBAL_SCALE_PTX)
        first_address = device.cache._global_symbols["scale"]
        device.memory.write_array(
            first_address, np.array([3.0], dtype=np.float32)
        )
        n = 32
        src = device.upload(np.ones(n, dtype=np.float32))
        dst = device.malloc(n * 4)
        device.launch(
            "scaled", grid=(1, 1, 1), block=(n, 1, 1), args=[src, dst, n]
        )
        assert np.allclose(dst.read(np.float32, n), 3.0)
        # Re-registering the module materializes `scale` at a new
        # address: the translated IR baked in the old one, so cached
        # code must be invalidated.
        device.register_module(GLOBAL_SCALE_PTX)
        second_address = device.cache._global_symbols["scale"]
        assert second_address != first_address
        assert device.cache.generation("scaled") == 2
        device.memory.write_array(
            second_address, np.array([5.0], dtype=np.float32)
        )
        device.launch(
            "scaled", grid=(1, 1, 1), block=(n, 1, 1), args=[src, dst, n]
        )
        assert np.allclose(dst.read(np.float32, n), 5.0), (
            "scalar IR kept the stale global-symbol address"
        )

    def test_unrelated_symbol_update_does_not_invalidate(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        device.warm("vecAdd")
        unrelated = (
            ".version 2.3\n.target sim\n"
            ".global .u32 unrelatedCounter;\n"
            ".entry other () { exit; }"
        )
        device.register_module(unrelated)
        assert device.cache.generation("vecAdd") == 1
        assert device.cache.statistics.invalidations == 0


class TestContentAddressedKeys:
    def test_digest_depends_on_warp_size(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        digests = {
            device.cache.specialization_digest("vecAdd", size)
            for size in (1, 2, 4)
        }
        assert len(digests) == 3

    @pytest.mark.parametrize(
        "overrides",
        [
            {"warp_sizes": (1, 2)},
            {"if_conversion": True},
            {"optimize": False},
            {"static_warps": True},
            {"thread_invariant_elimination": True},
        ],
        ids=["warp_sizes", "if_conversion", "optimize", "static_warps",
             "tie"],
    )
    def test_digest_depends_on_config_axes(self, overrides):
        base = Device(config=_isolated_config())
        other = Device(config=_isolated_config(**overrides))
        for device in (base, other):
            device.register_module(VECADD_PTX)
        assert base.cache.specialization_digest(
            "vecAdd", 1
        ) != other.cache.specialization_digest("vecAdd", 1)

    def test_digest_depends_on_machine(self):
        from repro import avx_machine

        sse = Device(config=_isolated_config())
        avx = Device(machine=avx_machine(), config=_isolated_config())
        for device in (sse, avx):
            device.register_module(VECADD_PTX)
        assert sse.cache.specialization_digest(
            "vecAdd", 1
        ) != avx.cache.specialization_digest("vecAdd", 1)


class TestDiskTier:
    def _store(self, tmp_path) -> CacheStore:
        return CacheStore(directory=str(tmp_path))

    def test_second_device_loads_from_disk(self, tmp_path):
        store = self._store(tmp_path)
        first = Device(config=vectorized_config(4), cache_store=store)
        first.register_module(VECADD_PTX)
        first.warm("vecAdd")
        assert first.cache.statistics.translations == 3
        assert len(store.entries()) == 3

        second = Device(config=vectorized_config(4), cache_store=store)
        second.register_module(VECADD_PTX)
        values, result = _run_vecadd(second)
        assert np.allclose(values, np.arange(64) + 2.0)
        stats = second.cache.statistics
        assert stats.translations == 0
        assert stats.disk_hits >= 1
        assert result.statistics.cache.disk_hits >= 1

    @pytest.mark.parametrize(
        "overrides",
        [
            {"warp_sizes": (1, 2)},
            {"if_conversion": True},
            {"optimize": False},
        ],
        ids=["warp_sizes", "if_conversion", "optimize"],
    )
    def test_configs_never_exchange_specializations(
        self, tmp_path, overrides
    ):
        """Satellite 4: devices sharing a disk cache with different
        cache_key() axes must never exchange specializations."""
        store = self._store(tmp_path)
        first = Device(config=_isolated_config(), cache_store=store)
        first.register_module(VECADD_PTX)
        first.warm("vecAdd")
        second = Device(
            config=_isolated_config(**overrides), cache_store=store
        )
        second.register_module(VECADD_PTX)
        second.warm("vecAdd")
        stats = second.cache.statistics
        assert stats.disk_hits == 0
        assert stats.translations == len(second.config.warp_sizes)
        values, _ = _run_vecadd(second)
        assert np.allclose(values, np.arange(64) + 2.0)

    def test_same_config_shares(self, tmp_path):
        store = self._store(tmp_path)
        for index in range(2):
            device = Device(
                config=_isolated_config(), cache_store=store
            )
            device.register_module(VECADD_PTX)
            device.warm("vecAdd")
            if index:
                assert device.cache.statistics.disk_hits == len(
                    device.config.warp_sizes
                )
                assert device.cache.statistics.translations == 0

    def test_corrupted_entry_recovers(self, tmp_path):
        """Satellite 4 (second half): bad entries are deleted and
        recompiled, never crash a launch."""
        store = self._store(tmp_path)
        first = Device(config=vectorized_config(4), cache_store=store)
        first.register_module(VECADD_PTX)
        first.warm("vecAdd")
        for digest in store.entries():
            with open(store.path(digest), "wb") as handle:
                handle.write(b"\x80\x04 this is not a pickle")
        second = Device(config=vectorized_config(4), cache_store=store)
        second.register_module(VECADD_PTX)
        second.warm("vecAdd")
        values, _ = _run_vecadd(second)
        assert np.allclose(values, np.arange(64) + 2.0)
        stats = second.cache.statistics
        assert stats.disk_hits == 0
        assert stats.disk_errors == 3
        assert stats.translations == 3
        # The corrupt files were replaced by fresh entries.
        third = Device(config=vectorized_config(4), cache_store=store)
        third.register_module(VECADD_PTX)
        third.warm("vecAdd")
        assert third.cache.statistics.disk_hits == 3

    def test_wrong_schema_discarded(self, tmp_path):
        store = self._store(tmp_path)
        device = Device(config=vectorized_config(4), cache_store=store)
        device.register_module(VECADD_PTX)
        digest = device.cache.specialization_digest("vecAdd", 4)
        with open(store.path(digest), "wb") as handle:
            pickle.dump({"schema": SCHEMA_VERSION + 1}, handle)
        device.cache.get("vecAdd", 4)
        stats = device.cache.statistics
        assert stats.disk_errors == 1
        assert stats.translations == 1

    def test_semantically_bad_payload_recovers(self, tmp_path):
        store = self._store(tmp_path)
        device = Device(config=vectorized_config(4), cache_store=store)
        device.register_module(VECADD_PTX)
        digest = device.cache.specialization_digest("vecAdd", 4)
        # Valid pickle, valid schema, nonsense contents.
        store.store(digest, {"function": "not an IRFunction"})
        device.cache.get("vecAdd", 4)
        stats = device.cache.statistics
        assert stats.disk_errors == 1
        assert stats.translations == 1
        # The bad entry was replaced by the fresh compilation.
        other = Device(config=vectorized_config(4), cache_store=store)
        other.register_module(VECADD_PTX)
        other.cache.get("vecAdd", 4)
        assert other.cache.statistics.disk_hits == 1

    def test_eviction_bounds_entries(self, tmp_path):
        store = CacheStore(directory=str(tmp_path), max_entries=2)
        device = Device(config=vectorized_config(4), cache_store=store)
        device.register_module(VECADD_PTX)
        device.warm("vecAdd")  # 3 specializations > max_entries=2
        assert len(store.entries()) == 2
        assert device.cache.statistics.evictions >= 1

    def test_store_disabled_by_default(self):
        device = Device(config=_isolated_config())
        assert device.cache.store is None

    def test_store_enabled_by_config(self, tmp_path):
        config = _isolated_config(
            persistent_cache=True, cache_dir=str(tmp_path)
        )
        device = Device(config=config)
        assert device.cache.store is not None
        assert device.cache.store.directory == str(tmp_path)

    def test_store_enabled_by_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        device = Device(config=_isolated_config())
        assert device.cache.store is not None
        assert device.cache.store.directory == str(tmp_path)


class TestColdProcessReuse:
    """Acceptance: a cold-process rerun with the disk tier enabled
    reports >=1 disk hit and fewer translations than the first run."""

    SCRIPT = textwrap.dedent(
        """
        import numpy as np
        from repro import Device, vectorized_config
        from tests.conftest import VECADD_PTX

        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 64
        a = device.upload(np.arange(n, dtype=np.float32))
        b = device.upload(np.ones(n, dtype=np.float32))
        c = device.malloc(n * 4)
        device.launch("vecAdd", grid=(2, 1, 1), block=(32, 1, 1),
                      args=[a, b, c, n])
        assert np.allclose(c.read(np.float32, n), np.arange(n) + 1.0)
        stats = device.cache.statistics
        print(f"translations={stats.translations} "
              f"disk_hits={stats.disk_hits}")
        """
    )

    def _run(self, tmp_path) -> dict:
        env = dict(os.environ)
        env["REPRO_CACHE"] = "1"
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        repo_root = os.path.dirname(os.path.dirname(__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
        )
        completed = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env,
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        fields = dict(
            part.split("=")
            for part in completed.stdout.strip().split()
        )
        return {key: int(value) for key, value in fields.items()}

    def test_second_process_hits_disk(self, tmp_path):
        first = self._run(tmp_path)
        second = self._run(tmp_path)
        assert first["translations"] >= 1
        assert first["disk_hits"] == 0
        assert second["disk_hits"] >= 1
        assert second["translations"] < first["translations"]


class TestWarmUp:
    def test_warm_compiles_all_widths(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        compiled = device.warm()
        assert set(compiled) == {
            ("vecAdd", size) for size in (1, 2, 4)
        }
        assert all(seconds > 0.0 for seconds in compiled.values())
        translations = device.cache.statistics.translations
        _run_vecadd(device)
        assert device.cache.statistics.translations == translations

    def test_warm_subset(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        compiled = device.warm("vecAdd", warp_sizes=(4,))
        assert set(compiled) == {("vecAdd", 4)}
        assert device.cache.cached_specializations() == [("vecAdd", 4)]

    def test_warm_rejects_unconfigured_width(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        with pytest.raises(TranslationCacheError):
            device.warm("vecAdd", warp_sizes=(8,))


class TestObservability:
    def test_launch_carries_cache_delta(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        _, first = _run_vecadd(device)
        cache = first.statistics.cache
        assert cache is not None
        assert cache.translations >= 1
        assert cache.compile_seconds
        _, second = _run_vecadd(device)
        assert second.statistics.cache.translations == 0
        assert second.statistics.cache.hits > 0

    def test_report_includes_cache_lines(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        _, result = _run_vecadd(device)
        report = result.statistics.report(device.machine.clock_hz)
        assert "cache " in report
        assert "cache disk" in report

    def test_format_cache_statistics(self):
        from repro.bench.reporting import format_cache_statistics

        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        _, result = _run_vecadd(device)
        text = format_cache_statistics(result.statistics.cache)
        assert "Translation-cache activity" in text
        assert "translations" in text
        assert format_cache_statistics(None)  # no-activity rendering

    def test_statistics_merge_accumulates_cache(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        _, first = _run_vecadd(device)
        _, second = _run_vecadd(device)
        expected = (
            first.statistics.cache.hits + second.statistics.cache.hits
        )
        merged = first.statistics
        merged.merge(second.statistics)
        assert merged.cache.hits == expected


class TestExecutionManagerMemory:
    """Satellites 2 and 3: slab reuse and live-region zeroing."""

    def test_repeated_launches_do_not_grow_arena(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 64
        a = device.upload(np.arange(n, dtype=np.float32))
        b = device.upload(np.ones(n, dtype=np.float32))
        c = device.malloc(n * 4)

        def launch():
            device.launch(
                "vecAdd", grid=(2, 1, 1), block=(32, 1, 1),
                args=[a, b, c, n],
            )

        launch()  # reserves slabs
        stable = device.memory.bytes_allocated
        for _ in range(5):
            launch()
        assert device.memory.bytes_allocated == stable

    def test_growing_launch_frees_old_slabs(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 512
        a = device.upload(np.arange(n, dtype=np.float32))
        b = device.upload(np.ones(n, dtype=np.float32))
        c = device.malloc(n * 4)

        def launch(block):
            device.launch(
                "vecAdd", grid=(n // block, 1, 1), block=(block, 1, 1),
                args=[a, b, c, n],
            )

        launch(16)
        launch(128)  # local slabs must grow: old ones freed
        grown = device.memory.bytes_allocated
        # Shrinking and repeating must reuse, not accumulate.
        for block in (16, 128, 16, 128):
            launch(block)
        assert device.memory.bytes_allocated == grown

    def test_window_zeroes_only_live_local_region(self):
        device = Device(config=vectorized_config(4))
        device.register_module(VECADD_PTX)
        n = 32
        a = device.upload(np.arange(n, dtype=np.float32))
        b = device.upload(np.ones(n, dtype=np.float32))
        c = device.malloc(n * 4)

        def launch():
            # One CTA -> worker 0 runs a 1-CTA window inside a slab
            # reserved for cta_window (4) CTAs.
            device.launch(
                "vecAdd", grid=(1, 1, 1), block=(n, 1, 1),
                args=[a, b, c, n],
            )

        launch()
        manager = device.launcher.managers[0]
        scalar = device.cache.scalar_ir("vecAdd")
        _, spill = assign_spill_slots(scalar)
        local_bytes = scalar.local_segment_size + spill
        local_bytes += (-local_bytes) % 16
        live = local_bytes * n  # one CTA in the window
        assert manager._local_slab_bytes > live
        # Poison the slab tail beyond the live region; the next launch
        # must leave it untouched.
        tail_size = manager._local_slab_bytes - live
        tail_base = manager._local_slab + live
        device.memory.fill(tail_base, tail_size, 0xAB)
        launch()
        tail = device.memory.read_array(tail_base, np.uint8, tail_size)
        assert np.all(tail == 0xAB), (
            "window zeroed local memory beyond its live region"
        )
        assert np.allclose(c.read(np.float32, n), np.arange(n) + 1.0)


class TestMemoryFreeList:
    def test_free_top_lowers_brk(self):
        from repro.machine.memory import MemorySystem

        memory = MemorySystem(size=1 << 16)
        base = memory.allocate(256)
        before = memory.bytes_allocated
        top = memory.allocate(128)
        memory.free(top, 128)
        assert memory.bytes_allocated == before
        again = memory.allocate(128)
        assert again == top
        assert base < again

    def test_interior_free_is_reused(self):
        from repro.machine.memory import MemorySystem

        memory = MemorySystem(size=1 << 16)
        first = memory.allocate(256)
        memory.allocate(64)  # pins the top
        memory.free(first, 256)
        reused = memory.allocate(128)
        assert reused == first

    def test_reused_block_is_zeroed(self):
        from repro.machine.memory import MemorySystem

        memory = MemorySystem(size=1 << 16)
        first = memory.allocate(64)
        memory.allocate(64)
        memory.data[first : first + 64] = 0xFF
        memory.free(first, 64)
        reused = memory.allocate(32)
        assert reused == first
        assert np.all(memory.data[reused : reused + 32] == 0)

    def test_device_free_allows_reuse(self):
        device = Device()
        first = device.malloc(1024)
        device.malloc(16)
        address = first.address
        device.free(first)
        second = device.malloc(512)
        assert second.address == address
