"""Error hierarchy and PTX type-system tests."""

import numpy as np
import pytest

from repro import errors
from repro.ptx.types import AddressSpace, DataType


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "PTXSyntaxError",
            "PTXValidationError",
            "TranslationError",
            "IRVerificationError",
            "VectorizationError",
            "ExecutionError",
            "MemoryFault",
            "LaunchError",
            "TranslationCacheError",
        ):
            assert issubclass(
                getattr(errors, name), errors.ReproError
            ), name

    def test_memory_fault_is_execution_error(self):
        assert issubclass(errors.MemoryFault, errors.ExecutionError)

    def test_syntax_error_formats_location(self):
        error = errors.PTXSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert "column 7" in str(error)
        assert error.line == 3

    def test_syntax_error_without_location(self):
        error = errors.PTXSyntaxError("bad token")
        assert "line" not in str(error)

    def test_memory_fault_formats_address(self):
        fault = errors.MemoryFault(0xBEEF, 4)
        assert "0xbeef" in str(fault)
        assert fault.size == 4


class TestDataTypes:
    def test_sizes(self):
        expected = {
            DataType.u8: 1, DataType.s16: 2, DataType.u32: 4,
            DataType.f32: 4, DataType.u64: 8, DataType.f64: 8,
            DataType.pred: 1, DataType.b64: 8,
        }
        for dtype, size in expected.items():
            assert dtype.size == size

    def test_classification(self):
        assert DataType.f32.is_float
        assert not DataType.f32.is_integer
        assert DataType.s32.is_signed
        assert DataType.u32.is_unsigned
        assert DataType.b32.is_untyped_bits
        assert DataType.b32.is_integer
        assert DataType.pred.is_predicate

    def test_numpy_dtypes_roundtrip_sizes(self):
        for dtype in DataType:
            assert dtype.numpy_dtype.itemsize == dtype.size or (
                dtype is DataType.pred
            )

    def test_parse_with_and_without_dot(self):
        assert DataType.parse(".f32") is DataType.f32
        assert DataType.parse("u64") is DataType.u64

    def test_str_has_leading_dot(self):
        assert str(DataType.f32) == ".f32"

    def test_signed_numpy_mapping(self):
        assert DataType.s8.numpy_dtype == np.dtype(np.int8)
        assert DataType.u64.numpy_dtype == np.dtype(np.uint64)


class TestAddressSpace:
    def test_parse_global_alias(self):
        assert AddressSpace.parse("global") is AddressSpace.global_
        assert AddressSpace.parse(".global") is AddressSpace.global_

    def test_parse_others(self):
        assert AddressSpace.parse("shared") is AddressSpace.shared
        assert AddressSpace.parse(".local") is AddressSpace.local
        assert AddressSpace.parse("param") is AddressSpace.param

    def test_str(self):
        assert str(AddressSpace.shared) == ".shared"
        assert str(AddressSpace.global_) == ".global"
