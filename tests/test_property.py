"""Property-based tests (hypothesis).

The central invariant of the paper's transformation — "execution of a
single vectorized kernel is computationally equivalent to the serial
execution of a scalar version of the kernel over a collection of
threads" (§4) — is checked here on randomly generated kernels: the
scalar baseline's output is the reference, and every vectorized
configuration must reproduce it bit-for-bit.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Device,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from repro.machine import MemorySystem
from repro.ptx.types import DataType
from tests.conftest import COLLATZ_PTX, collatz_steps

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- random straight-line kernel generation -------------------------------

_INT_OPS = ("add", "sub", "mul.lo", "min", "max", "and", "or", "xor",
            "shl")
_FLOAT_OPS = ("add", "sub", "mul", "min", "max")

int_op = st.tuples(
    st.sampled_from(_INT_OPS),
    st.integers(0, 3),  # dst
    st.integers(0, 3),  # src a
    st.one_of(st.integers(0, 3), st.integers(1, 1000)),  # src b or imm
)
float_op = st.tuples(
    st.sampled_from(_FLOAT_OPS),
    st.integers(0, 3),
    st.integers(0, 3),
    st.integers(0, 3),
)


def render_kernel(int_ops, float_ops, shift_counts=(), cvt_mode=None):
    """A kernel seeding 4 int + 4 float registers from per-thread data,
    applying the random op sequence, and storing a mixed result.

    ``shift_counts`` appends shifts with the given immediate counts
    (including out-of-range ones, exercising PTX clamp semantics);
    ``cvt_mode`` appends saturating float->int converts in that
    rounding mode, driven through overflow (and NaN via inf - inf)."""
    lines = [
        ".version 2.3",
        ".target sim",
        ".entry prop (.param .u64 in, .param .u64 out, .param .u32 n)",
        "{",
        "  .reg .u32 %r<12>;",
        "  .reg .u64 %rd<6>;",
        "  .reg .f32 %f<8>;",
        "  .reg .pred %p<2>;",
        "  mov.u32 %r8, %tid.x;",
        "  mov.u32 %r9, %ntid.x;",
        "  mov.u32 %r10, %ctaid.x;",
        "  mad.lo.u32 %r11, %r10, %r9, %r8;",
        "  ld.param.u32 %r7, [n];",
        "  setp.ge.u32 %p1, %r11, %r7;",
        "  @%p1 bra DONE;",
        "  mul.wide.u32 %rd1, %r11, 4;",
        "  ld.param.u64 %rd2, [in];",
        "  add.u64 %rd3, %rd2, %rd1;",
        "  ld.global.u32 %r0, [%rd3];",
        # derive the other registers deterministically
        "  xor.b32 %r1, %r0, 0x5bd1e995;",
        "  add.u32 %r2, %r0, %r11;",
        "  shr.u32 %r3, %r0, 3;",
        "  cvt.rn.f32.u32 %f0, %r0;",
        "  cvt.rn.f32.u32 %f1, %r1;",
        "  cvt.rn.f32.u32 %f2, %r2;",
        "  cvt.rn.f32.u32 %f3, %r3;",
        "  mul.f32 %f0, %f0, 0.000001;",
        "  mul.f32 %f1, %f1, 0.000001;",
        "  mul.f32 %f2, %f2, 0.000001;",
        "  mul.f32 %f3, %f3, 0.000001;",
    ]
    for op, dst, a, b in int_ops:
        if isinstance(b, int) and b > 3:
            operand = str(b)
        else:
            operand = f"%r{b}"
        suffix = "b32" if op in ("and", "or", "xor", "shl") else "u32"
        lines.append(f"  {op}.{suffix} %r{dst}, %r{a}, {operand};")
    for op, dst, a, b in float_ops:
        lines.append(f"  {op}.f32 %f{dst}, %f{a}, %f{b};")
    shift_variants = ("shl.b32", "shr.u32", "shr.s32")
    for index, count in enumerate(shift_counts):
        op = shift_variants[index % len(shift_variants)]
        target = index % 4
        lines.append(f"  {op} %r{target}, %r{target}, {count};")
    lines += [
        # combine everything into one u32 result
        "  xor.b32 %r4, %r0, %r1;",
        "  xor.b32 %r4, %r4, %r2;",
        "  xor.b32 %r4, %r4, %r3;",
        "  add.f32 %f4, %f0, %f1;",
        "  add.f32 %f4, %f4, %f2;",
        "  add.f32 %f4, %f4, %f3;",
        "  mul.f32 %f5, %f4, 1024.0;",
        "  cvt.rzi.s32.f32 %r5, %f5;",
        "  xor.b32 %r4, %r4, %r5;",
    ]
    if cvt_mode is not None:
        lines += [
            # drive the convert through overflow: the product
            # saturates (or hits inf), and inf - inf injects NaN
            "  mul.f32 %f6, %f5, 1000000000.0;",
            "  mul.f32 %f6, %f6, %f6;",
            f"  cvt.{cvt_mode}.s32.f32 %r6, %f6;",
            "  xor.b32 %r4, %r4, %r6;",
            "  sub.f32 %f7, %f6, %f6;",
            f"  cvt.{cvt_mode}.s32.f32 %r6, %f7;",
            "  xor.b32 %r4, %r4, %r6;",
        ]
    lines += [
        "  ld.param.u64 %rd4, [out];",
        "  add.u64 %rd5, %rd4, %rd1;",
        "  st.global.u32 [%rd5], %r4;",
        "DONE:",
        "  exit;",
        "}",
    ]
    return "\n".join(lines)


def run_config(source, data, config):
    n = len(data)
    device = Device(config=config)
    device.register_module(source)
    src = device.upload(data)
    dst = device.malloc(n * 4)
    device.launch(
        "prop", grid=(2, 1, 1), block=(32, 1, 1), args=[src, dst, n]
    )
    return dst.read(np.uint32, n)


class TestVectorizationEquivalence:
    @_SETTINGS
    @given(
        int_ops=st.lists(int_op, min_size=1, max_size=12),
        float_ops=st.lists(float_op, min_size=0, max_size=8),
        seed=st.integers(0, 2**31),
    )
    def test_straight_line_kernels_match_baseline(
        self, int_ops, float_ops, seed
    ):
        source = render_kernel(int_ops, float_ops)
        data = np.random.default_rng(seed).integers(
            0, 1 << 32, 64, dtype=np.uint32
        )
        reference = run_config(source, data, baseline_config())
        for config in (vectorized_config(4), static_tie_config(4)):
            assert np.array_equal(
                run_config(source, data, config), reference
            )

    @_SETTINGS
    @given(
        values=st.lists(
            st.integers(1, 2000), min_size=8, max_size=64
        )
    )
    def test_divergent_loops_match_reference(self, values):
        data = np.array(values, dtype=np.uint32)
        n = len(data)
        expected = np.array(
            [collatz_steps(int(v)) for v in data], dtype=np.uint32
        )
        for config in (
            baseline_config(),
            vectorized_config(4),
            static_tie_config(4),
        ):
            device = Device(config=config)
            device.register_module(COLLATZ_PTX)
            src = device.upload(data)
            dst = device.malloc(n * 4)
            device.launch(
                "collatz", grid=(2, 1, 1), block=(32, 1, 1),
                args=[src, dst, n],
            )
            assert np.array_equal(dst.read(np.uint32, n), expected)


class TestBackendDifferential:
    """Differential testing across the three execution paths: the
    dict-dispatch reference, the closure lowering, and the array
    backend must agree bit-for-bit on random kernels — including
    clamped shifts and saturating converts, the scalar-semantics
    corners this release fixed."""

    @_SETTINGS
    @given(
        int_ops=st.lists(int_op, min_size=1, max_size=10),
        float_ops=st.lists(float_op, min_size=0, max_size=6),
        shift_counts=st.lists(
            st.sampled_from((0, 1, 7, 31, 32, 33, 255)),
            min_size=0,
            max_size=4,
        ),
        cvt_mode=st.sampled_from(("rni", "rzi", "rmi", "rpi")),
        seed=st.integers(0, 2**31),
    )
    def test_backends_agree_on_random_kernels(
        self, int_ops, float_ops, shift_counts, cvt_mode, seed
    ):
        source = render_kernel(
            int_ops, float_ops, shift_counts, cvt_mode
        )
        data = np.random.default_rng(seed).integers(
            0, 1 << 32, 64, dtype=np.uint32
        )
        reference = run_config(source, data, baseline_config())
        closure = vectorized_config(4)
        for config in (
            closure,
            replace(closure, interpreter_mode="dispatch"),
            replace(closure, backend="array"),
        ):
            assert np.array_equal(
                run_config(source, data, config), reference
            )


class TestMemoryProperties:
    @_SETTINGS
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(0, 1000),  # offset
                st.sampled_from(
                    [DataType.u8, DataType.u16, DataType.u32,
                     DataType.u64, DataType.f32]
                ),
                st.integers(0, 255),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_last_store_wins(self, operations):
        memory = MemorySystem(1 << 14)
        base = memory.allocate(2048)
        shadow = {}
        for offset, dtype, value in operations:
            address = base + offset
            memory.store(dtype, address, value)
            for byte in range(dtype.size):
                shadow.pop(address + byte, None)
            shadow[(address, dtype.value)] = value
            # bytes overlapping older stores invalidate them
            stale = [
                key
                for key in shadow
                if key != (address, dtype.value)
                and _overlaps(key, address, dtype)
            ]
            for key in stale:
                del shadow[key]
        for (address, type_name), value in shadow.items():
            dtype = DataType(type_name)
            assert memory.load(dtype, address) == dtype.numpy_dtype.type(
                value
            )

    @_SETTINGS
    @given(
        sizes=st.lists(st.integers(1, 300), min_size=1, max_size=20)
    )
    def test_allocations_never_overlap(self, sizes):
        memory = MemorySystem(1 << 16)
        regions = []
        for size in sizes:
            base = memory.allocate(size)
            for other_base, other_size in regions:
                assert (
                    base + size <= other_base
                    or other_base + other_size <= base
                )
            regions.append((base, size))


def _overlaps(key, address, dtype):
    other_address, other_type = key
    other_size = DataType(other_type).size
    return not (
        address + dtype.size <= other_address
        or other_address + other_size <= address
    )


class TestPassSemanticPreservation:
    @_SETTINGS
    @given(
        int_ops=st.lists(int_op, min_size=1, max_size=10),
        seed=st.integers(0, 2**31),
    )
    def test_optimized_pipeline_preserves_results(self, int_ops, seed):
        from repro import ExecutionConfig

        source = render_kernel(int_ops, [])
        data = np.random.default_rng(seed).integers(
            0, 1 << 32, 32, dtype=np.uint32
        )
        plain = run_config(
            source,
            data,
            ExecutionConfig(warp_sizes=(1, 2, 4), optimize=False),
        )
        optimized = run_config(
            source,
            data,
            ExecutionConfig(warp_sizes=(1, 2, 4), optimize=True),
        )
        assert np.array_equal(plain, optimized)


class TestAffineAnalysisProperty:
    """The affine analysis must never overclaim: whenever it assigns a
    stride, the actual per-thread values must satisfy
    ``value(tid) == value(0) + stride * tid``."""

    @_SETTINGS
    @given(
        steps=st.lists(
            st.tuples(
                st.sampled_from(["add_tid", "add_const", "mul_const",
                                 "shl_const", "add_self"]),
                st.integers(1, 8),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_claimed_strides_hold_at_runtime(self, steps):
        from repro.frontend import translate_kernel
        from repro.ptx import parse
        from repro.transforms import analyze_affine, analyze_uniformity

        # Build a kernel computing r2 via the random expression chain,
        # then storing it: out[tid] = r2.
        body = ["  mov.u32 %r1, %tid.x;", "  mov.u32 %r2, %r1;"]
        for op, k in steps:
            if op == "add_tid":
                body.append("  add.u32 %r2, %r2, %r1;")
            elif op == "add_const":
                body.append(f"  add.u32 %r2, %r2, {k};")
            elif op == "mul_const":
                body.append(f"  mul.lo.u32 %r2, %r2, {k};")
            elif op == "shl_const":
                body.append(f"  shl.b32 %r2, %r2, {k % 4};")
            elif op == "add_self":
                body.append("  add.u32 %r2, %r2, %r2;")
        source = (
            ".version 2.3\n.target sim\n"
            ".entry k (.param .u64 out)\n{\n"
            "  .reg .u32 %r<6>;\n  .reg .u64 %rd<4>;\n"
            + "\n".join(body)
            + "\n  mul.wide.u32 %rd1, %r1, 4;\n"
            "  ld.param.u64 %rd2, [out];\n"
            "  add.u64 %rd3, %rd2, %rd1;\n"
            "  st.global.u32 [%rd3], %r2;\n  exit;\n}\n"
        )
        scalar = translate_kernel(parse(source).kernel("k"))
        uniformity = analyze_uniformity(scalar, static_warps=True)
        strides = analyze_affine(scalar, uniformity)
        claimed = strides.get("r2")
        if claimed is None:
            return  # conservative answers are always allowed

        device = Device(config=baseline_config())
        device.register_module(source)
        n = 16
        out = device.malloc(n * 4)
        device.launch("k", grid=1, block=n, args=[out])
        values = out.read(np.uint32, n).astype(np.int64)
        deltas = np.diff(values)
        expected = np.uint32(claimed).astype(np.int64)
        # all per-thread deltas equal the claimed stride (mod 2^32)
        assert np.all(
            (deltas % (1 << 32)) == (expected % (1 << 32))
        ), (claimed, values)


class TestMeldingProperty:
    """Randomly generated divergent diamonds (unbalanced arms, nested
    inner diamonds, side exits, shared-memory stores in arms) must
    produce bit-identical guest memory with the melding pass off and
    on, across all three execution paths — and a fixed meld setting
    must model identical statistics on every backend."""

    SETTINGS = settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )

    @staticmethod
    def build_kernel(taken_ops, fall_ops, threshold, variant):
        def arm(ops):
            lines = []
            for op, dst, a, b in ops:
                operand = str(b) if isinstance(b, int) and b > 3 else (
                    f"%r{b}"
                )
                suffix = (
                    "b32" if op in ("and", "or", "xor", "shl") else "u32"
                )
                lines.append(
                    f"  {op}.{suffix} %r{dst}, %r{a}, {operand};"
                )
            return "\n".join(lines)

        shared = variant in ("shared-both", "shared-one")
        shared_decl = "  .shared .u32 slots[32];" if shared else ""
        taken_extra = []
        fall_extra = []
        join_extra = []
        if variant == "nested":
            # inner diamond inside the fallthrough arm: melding the
            # inner region straightens the arm, which can then make
            # the outer diamond meldable on the next fixpoint round
            fall_extra = [
                "  and.b32 %r6, %r1, 1;",
                "  setp.eq.u32 %p3, %r6, 0;",
                "  @%p3 bra NEVEN;",
                "  add.u32 %r2, %r2, 11;",
                "  bra NJOIN;",
                "NEVEN:",
                "  mul.lo.u32 %r2, %r2, 5;",
                "NJOIN:",
            ]
        elif variant == "side":
            # data-dependent side exit out of the taken arm: the arm
            # is not straight-line, so the region must be rejected —
            # and results must still match with the pass enabled
            taken_extra = [
                "  and.b32 %r6, %r2, 255;",
                "  setp.eq.u32 %p3, %r6, 129;",
                "  @%p3 bra DONE;",
            ]
        elif shared:
            taken_extra = ["  st.shared.u32 [%r12], %r3;"]
            if variant == "shared-both":
                # both arms publish (different values, same address):
                # the stores align and the region may meld
                fall_extra = ["  st.shared.u32 [%r12], %r2;"]
            join_extra = [
                "  bar.sync 0;",
                "  xor.b32 %r13, %r8, 1;",
                "  shl.b32 %r13, %r13, 2;",
                "  mov.u32 %r14, slots;",
                "  add.u32 %r13, %r14, %r13;",
                "  ld.shared.u32 %r15, [%r13];",
                "  xor.b32 %r5, %r5, %r15;",
            ]
        shared_setup = ""
        if shared:
            shared_setup = (
                "  shl.b32 %r12, %r8, 2;\n"
                "  mov.u32 %r14, slots;\n"
                "  add.u32 %r12, %r14, %r12;\n"
            )
        return f"""
.version 2.3
.target sim
.entry prop (.param .u64 in, .param .u64 out, .param .u32 n)
{{
  .reg .u32 %r<16>;
  .reg .u64 %rd<6>;
  .reg .pred %p<6>;
{shared_decl}
  mov.u32 %r8, %tid.x;
  mov.u32 %r9, %ntid.x;
  mov.u32 %r10, %ctaid.x;
  mad.lo.u32 %r11, %r10, %r9, %r8;
  ld.param.u32 %r7, [n];
  setp.ge.u32 %p1, %r11, %r7;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r11, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r0, [%rd3];
  xor.b32 %r1, %r0, 0x9e3779b9;
  add.u32 %r2, %r0, %r11;
  shr.u32 %r3, %r0, 5;
  and.b32 %r4, %r0, 63;
{shared_setup}  setp.lt.u32 %p2, %r4, {threshold};
  @%p2 bra TAKEN;
{arm(fall_ops)}
{chr(10).join(fall_extra)}
  bra JOIN;
TAKEN:
{arm(taken_ops)}
{chr(10).join(taken_extra)}
JOIN:
  xor.b32 %r5, %r0, %r1;
  xor.b32 %r5, %r5, %r2;
  xor.b32 %r5, %r5, %r3;
{chr(10).join(join_extra)}
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r5;
DONE:
  exit;
}}
"""

    @staticmethod
    def run_with_stats(source, data, config):
        n = len(data)
        device = Device(config=config)
        device.register_module(source)
        src = device.upload(data)
        # upload zeros (not malloc) so side-exit lanes that skip the
        # final store read back a defined value in every run
        dst = device.upload(np.zeros(n, dtype=np.uint32))
        result = device.launch(
            "prop", grid=(2, 1, 1), block=(32, 1, 1), args=[src, dst, n]
        )
        return dst.read(np.uint32, n), result.statistics

    @SETTINGS
    @given(
        taken_ops=st.lists(int_op, min_size=1, max_size=5),
        fall_ops=st.lists(int_op, min_size=0, max_size=3),
        threshold=st.integers(0, 64),
        variant=st.sampled_from(
            ("plain", "nested", "side", "shared-both", "shared-one")
        ),
        seed=st.integers(0, 2**31),
    )
    def test_meld_differential_matrix(
        self, taken_ops, fall_ops, threshold, variant, seed
    ):
        source = self.build_kernel(
            taken_ops, fall_ops, threshold, variant
        )
        data = np.random.default_rng(seed).integers(
            0, 1 << 32, 64, dtype=np.uint32
        )
        base = vectorized_config(4)
        backends = (
            {"interpreter_mode": "closure"},
            {"interpreter_mode": "dispatch"},
            {"backend": "array"},
        )
        reference = {}
        for meld in (False, True):
            stats_reference = None
            for backend_kwargs in backends:
                config = replace(base, meld=meld, **backend_kwargs)
                values, stats = self.run_with_stats(
                    source, data, config
                )
                if meld in reference:
                    # meld on and off agree bit-for-bit on guest memory
                    assert np.array_equal(values, reference[meld])
                else:
                    reference[meld] = values
                if stats_reference is None:
                    stats_reference = stats
                else:
                    # backends model identical statistics for a fixed
                    # meld setting
                    assert (
                        stats.total_cycles
                        == stats_reference.total_cycles
                    )
                    assert (
                        stats.yields_by_status
                        == stats_reference.yields_by_status
                    )
                    assert (
                        stats.melded_regions
                        == stats_reference.melded_regions
                    )
        assert np.array_equal(reference[False], reference[True])


class TestIfConversionProperty:
    """Randomly generated pure diamonds must compute identical results
    with and without if-conversion."""

    @_SETTINGS
    @given(
        taken_ops=st.lists(int_op, min_size=1, max_size=4),
        fall_ops=st.lists(int_op, min_size=0, max_size=4),
        threshold=st.integers(0, 64),
        seed=st.integers(0, 2**31),
    )
    def test_random_diamonds_equivalent(
        self, taken_ops, fall_ops, threshold, seed
    ):
        from repro import ExecutionConfig

        def arm(ops):
            lines = []
            for op, dst, a, b in ops:
                operand = str(b) if isinstance(b, int) and b > 3 else (
                    f"%r{b}"
                )
                suffix = (
                    "b32" if op in ("and", "or", "xor", "shl") else "u32"
                )
                lines.append(
                    f"  {op}.{suffix} %r{dst}, %r{a}, {operand};"
                )
            return "\n".join(lines)

        source = f"""
.version 2.3
.target sim
.entry prop (.param .u64 in, .param .u64 out, .param .u32 n)
{{
  .reg .u32 %r<12>;
  .reg .u64 %rd<6>;
  .reg .pred %p<2>;
  mov.u32 %r8, %tid.x;
  mov.u32 %r9, %ntid.x;
  mov.u32 %r10, %ctaid.x;
  mad.lo.u32 %r11, %r10, %r9, %r8;
  ld.param.u32 %r7, [n];
  setp.ge.u32 %p1, %r11, %r7;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r11, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r0, [%rd3];
  xor.b32 %r1, %r0, 0x9e3779b9;
  add.u32 %r2, %r0, %r11;
  shr.u32 %r3, %r0, 5;
  and.b32 %r4, %r0, 63;
  setp.lt.u32 %p1, %r4, {threshold};
  @%p1 bra TAKEN;
{arm(fall_ops)}
  bra JOIN;
TAKEN:
{arm(taken_ops)}
JOIN:
  xor.b32 %r5, %r0, %r1;
  xor.b32 %r5, %r5, %r2;
  xor.b32 %r5, %r5, %r3;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r5;
DONE:
  exit;
}}
"""
        data = np.random.default_rng(seed).integers(
            0, 1 << 32, 64, dtype=np.uint32
        )
        plain = run_config(source, data, vectorized_config(4))
        converted = run_config(
            source,
            data,
            ExecutionConfig(warp_sizes=(1, 2, 4), if_conversion=True),
        )
        assert np.array_equal(plain, converted)
