"""Bench harness tests: the SuiteRunner caching, figure drivers and
text reporting that regenerate the paper's tables/figures."""

import pytest

from repro.bench import (
    BASELINE,
    STATIC_TIE,
    VECTORIZED,
    SuiteRunner,
    application_workloads,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_table1,
)
from repro.bench.harness import average
from repro.bench.reporting import (
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_table1,
    join_sections,
)


@pytest.fixture(scope="module")
def tiny_runner():
    return SuiteRunner(scale=0.25)


class TestHarness:
    def test_application_set_excludes_microbenchmark(self):
        names = [w.name for w in application_workloads()]
        assert "throughput" not in names
        assert "BlackScholes" in names

    def test_runner_caches_runs(self, tiny_runner):
        workload = application_workloads()[0]
        first = tiny_runner.run(workload, BASELINE)
        second = tiny_runner.run(workload, BASELINE)
        assert first is second

    def test_runner_configs(self, tiny_runner):
        assert tiny_runner.config(BASELINE).max_warp_size == 1
        assert tiny_runner.config(VECTORIZED).max_warp_size == 4
        assert tiny_runner.config(STATIC_TIE).static_warps

    def test_average_helper(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0

    def test_speedups_cover_all_applications(self, tiny_runner):
        speedups = tiny_runner.speedups()
        assert set(speedups) == {
            w.name for w in application_workloads()
        }
        assert all(value > 0 for value in speedups.values())


class TestTable1Driver:
    def test_small_scale_run(self):
        result = run_table1(scale=0.2, warp_sizes=(1, 4))
        assert set(result.gflops) == {1, 4}
        assert result.gflops[4] > result.gflops[1]
        assert result.fraction_of_peak[4] < 1.0

    def test_formatting(self):
        result = run_table1(scale=0.2, warp_sizes=(1, 4))
        text = format_table1(result)
        assert "Table 1" in text
        assert "paper" in text


class TestFigureDrivers:
    def test_figure6(self, tiny_runner):
        result = run_figure6(tiny_runner)
        assert result.average > 0
        assert result.best[1] >= max(result.speedups.values()) - 1e-9
        text = format_figure6(result)
        assert "AVERAGE" in text

    def test_figure7(self, tiny_runner):
        result = run_figure7(tiny_runner)
        assert result.dominant_warp_size("BlackScholes") == 4
        assert "avg=" in format_figure7(result)

    def test_figure8(self, tiny_runner):
        result = run_figure8(tiny_runner)
        assert result.restored["Template"] == 0.0
        assert "restored" in format_figure8(result).lower()

    def test_figure9(self, tiny_runner):
        result = run_figure9(tiny_runner)
        assert 0 <= result.em_fraction("Nbody") < 0.2
        assert result.kernel_fraction("Nbody") > 0.8
        assert "kernel=" in format_figure9(result)

    def test_figure10(self, tiny_runner):
        result = run_figure10(tiny_runner)
        assert set(result.relative) == set(result.absolute)
        assert "relative" in format_figure10(result)

    def test_join_sections(self):
        assert join_sections(["a", "b"]) == "a\n\nb"


class TestMainEntry:
    def test_cli_single_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--scale", "0.1", "--only", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "completed" in captured.out
