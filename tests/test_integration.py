"""End-to-end integration tests: full kernels through the public API
under every configuration, checking both results and the divergence
machinery's observable behaviour."""

import numpy as np
import pytest

from repro import (
    Device,
    ExecutionConfig,
    avx_machine,
    baseline_config,
    knights_ferry,
    static_tie_config,
    vectorized_config,
)
from tests.conftest import (
    COLLATZ_PTX,
    REDUCE_PTX,
    VECADD_PTX,
    collatz_steps,
)

ALL_CONFIGS = [
    ("baseline", baseline_config()),
    ("vec4", vectorized_config(4)),
    ("vec2", vectorized_config(2)),
    ("static-tie", static_tie_config(4)),
]


def run_vecadd(device, n, grid, block, rng):
    device.register_module(VECADD_PTX)
    a = rng.standard_normal(n).astype(np.float32)
    b = rng.standard_normal(n).astype(np.float32)
    a_buffer = device.upload(a)
    b_buffer = device.upload(b)
    c_buffer = device.malloc(n * 4)
    result = device.launch(
        "vecAdd", grid=grid, block=block,
        args=[a_buffer, b_buffer, c_buffer, n],
    )
    return c_buffer.read(np.float32, n), a + b, result


class TestVecAddEverywhere:
    @pytest.mark.parametrize("label,config", ALL_CONFIGS)
    def test_exact_size(self, label, config, rng):
        device = Device(config=config)
        got, expected, _ = run_vecadd(
            device, 256, (4, 1, 1), (64, 1, 1), rng
        )
        assert np.allclose(got, expected)

    @pytest.mark.parametrize("label,config", ALL_CONFIGS)
    def test_ragged_size_diverges_at_guard(self, label, config, rng):
        device = Device(config=config)
        got, expected, _ = run_vecadd(
            device, 250, (4, 1, 1), (64, 1, 1), rng
        )
        assert np.allclose(got, expected)

    def test_divergent_guard_yields_when_misaligned(self, rng):
        device = Device(config=vectorized_config(4))
        # n = 249 puts the guard boundary inside a warp
        _, _, result = run_vecadd(
            device, 249, (4, 1, 1), (63, 1, 1), rng
        )
        assert result.statistics.divergent_yields > 0


class TestCollatzDivergence:
    @pytest.mark.parametrize("label,config", ALL_CONFIGS)
    def test_correct_everywhere(self, label, config, rng):
        n = 256
        values = rng.integers(1, 500, n).astype(np.uint32)
        expected = np.array(
            [collatz_steps(int(v)) for v in values], dtype=np.uint32
        )
        device = Device(config=config)
        device.register_module(COLLATZ_PTX)
        src = device.upload(values)
        dst = device.malloc(n * 4)
        device.launch(
            "collatz", grid=(4, 1, 1), block=(64, 1, 1),
            args=[src, dst, n],
        )
        assert np.array_equal(dst.read(np.uint32, n), expected)

    def test_dynamic_formation_reforms_warps(self, rng):
        n = 256
        values = rng.integers(1, 500, n).astype(np.uint32)
        device = Device(config=vectorized_config(4))
        device.register_module(COLLATZ_PTX)
        src = device.upload(values)
        dst = device.malloc(n * 4)
        result = device.launch(
            "collatz", grid=(4, 1, 1), block=(64, 1, 1),
            args=[src, dst, n],
        )
        statistics = result.statistics
        assert statistics.divergent_yields > 0
        # re-formation found wider-than-scalar warps after divergence
        assert statistics.average_warp_size > 1.5
        assert statistics.average_values_restored > 0

    def test_uniform_data_never_diverges(self):
        n = 128
        values = np.full(n, 32, dtype=np.uint32)  # same trip count
        device = Device(config=vectorized_config(4))
        device.register_module(COLLATZ_PTX)
        src = device.upload(values)
        dst = device.malloc(n * 4)
        result = device.launch(
            "collatz", grid=(2, 1, 1), block=(64, 1, 1),
            args=[src, dst, n],
        )
        assert result.statistics.divergent_yields == 0
        assert np.all(dst.read(np.uint32, n) == collatz_steps(32))


class TestBarriers:
    @pytest.mark.parametrize("label,config", ALL_CONFIGS)
    def test_reduction_correct(self, label, config, rng):
        ctas = 8
        data = rng.standard_normal(ctas * 64).astype(np.float32)
        device = Device(config=config)
        device.register_module(REDUCE_PTX)
        src = device.upload(data)
        dst = device.malloc(ctas * 4)
        device.launch(
            "reduceK", grid=(ctas, 1, 1), block=(64, 1, 1),
            args=[src, dst],
        )
        got = dst.read(np.float32, ctas)
        expected = data.reshape(ctas, 64).sum(axis=1)
        assert np.allclose(got, expected, rtol=1e-4)

    def test_repeated_launches_reuse_state(self, rng):
        """Same kernel launched repeatedly: slabs are reused and the
        cache serves translations without re-compiling."""
        device = Device(config=vectorized_config(4))
        device.register_module(REDUCE_PTX)
        for _ in range(3):
            data = rng.standard_normal(2 * 64).astype(np.float32)
            src = device.upload(data)
            dst = device.malloc(2 * 4)
            device.launch(
                "reduceK", grid=(2, 1, 1), block=(64, 1, 1),
                args=[src, dst],
            )
            expected = data.reshape(2, 64).sum(axis=1)
            assert np.allclose(
                dst.read(np.float32, 2), expected, rtol=1e-4
            )
        translations = device.cache.statistics.translations
        assert translations <= len(device.config.warp_sizes)


class TestOtherMachines:
    def test_avx_8_wide_runs(self, rng):
        device = Device(
            machine=avx_machine(),
            config=ExecutionConfig(warp_sizes=(1, 2, 4, 8)),
        )
        got, expected, result = run_vecadd(
            device, 256, (4, 1, 1), (64, 1, 1), rng
        )
        assert np.allclose(got, expected)
        assert max(result.statistics.warp_size_histogram) == 8

    def test_knights_ferry_16_wide_runs(self, rng):
        device = Device(
            machine=knights_ferry(),
            config=ExecutionConfig(warp_sizes=(1, 2, 4, 8, 16)),
        )
        got, expected, result = run_vecadd(
            device, 512, (8, 1, 1), (64, 1, 1), rng
        )
        assert np.allclose(got, expected)
        assert max(result.statistics.warp_size_histogram) == 16


class TestCrossCtaFormation:
    def test_cross_cta_warps_widen_small_blocks(self, rng):
        n = 64
        base = ExecutionConfig(warp_sizes=(1, 2, 4))
        cross = ExecutionConfig(
            warp_sizes=(1, 2, 4), allow_cross_cta_warps=True
        )
        results = {}
        for label, config in (("same", base), ("cross", cross)):
            device = Device(config=config)
            got, expected, result = run_vecadd(
                device, n, (32, 1, 1), (2, 1, 1), rng
            )
            assert np.allclose(got, expected)
            results[label] = result.statistics.average_warp_size
        assert results["same"] <= 2.0
        assert results["cross"] > results["same"]


class TestOptimizationLevels:
    def test_unoptimized_pipeline_still_correct(self, rng):
        config = ExecutionConfig(warp_sizes=(1, 2, 4), optimize=False)
        device = Device(config=config)
        got, expected, _ = run_vecadd(
            device, 200, (4, 1, 1), (64, 1, 1), rng
        )
        assert np.allclose(got, expected)

    def test_optimization_reduces_instructions(self):
        plain = Device(
            config=ExecutionConfig(warp_sizes=(1, 2, 4), optimize=False)
        )
        optimized = Device(
            config=ExecutionConfig(warp_sizes=(1, 2, 4), optimize=True)
        )
        plain.register_module(VECADD_PTX)
        optimized.register_module(VECADD_PTX)
        assert optimized.cache.instruction_count(
            "vecAdd", 4
        ) <= plain.cache.instruction_count("vecAdd", 4)
