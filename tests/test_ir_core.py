"""IR container tests: values, basic blocks, functions, printer."""

import pytest

from repro.errors import IRVerificationError
from repro.ir import (
    BasicBlock,
    BinaryOp,
    Branch,
    Constant,
    Exit,
    IRFunction,
    UnaryOp,
    VirtualRegister,
    print_function,
    summarize,
    verify_function,
)
from repro.ptx.types import DataType


def reg(name, dtype=DataType.u32, width=1):
    return VirtualRegister(name=name, dtype=dtype, width=width)


def add(dst, a, b):
    return BinaryOp(op="add", dtype=DataType.u32, dst=dst, a=a, b=b)


class TestValues:
    def test_register_identity(self):
        assert reg("a") == reg("a")
        assert reg("a") != reg("a", width=4)

    def test_register_widening(self):
        wide = reg("a").with_width(4)
        assert wide.is_vector
        assert wide.name == "a"

    def test_constant_is_scalar(self):
        constant = Constant(5, DataType.u32)
        assert not constant.is_vector
        assert constant.width == 1

    def test_vector_register_str(self):
        assert "<4 x u32>" in str(reg("a", width=4))


class TestBasicBlock:
    def test_append_orders_instructions(self):
        block = BasicBlock("b")
        first = add(reg("a"), Constant(1, DataType.u32), reg("b"))
        block.append(first)
        block.append(Branch("next"))
        assert block.all_instructions()[0] is first
        assert block.is_terminated

    def test_double_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Exit())
        with pytest.raises(IRVerificationError):
            block.append(Branch("x"))

    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Exit())
        with pytest.raises(IRVerificationError):
            block.append(add(reg("a"), reg("b"), reg("c")))

    def test_successors_from_terminator(self):
        block = BasicBlock("b")
        block.append(Branch("next"))
        assert block.successors() == ["next"]


class TestIRFunction:
    def test_first_block_is_entry(self):
        function = IRFunction("f")
        function.add_block("start")
        function.add_block("other")
        assert function.entry_label == "start"

    def test_duplicate_label_rejected(self):
        function = IRFunction("f")
        function.add_block("a")
        with pytest.raises(IRVerificationError):
            function.add_block("a")

    def test_prepend_block_becomes_entry(self):
        function = IRFunction("f")
        function.add_block("body")
        function.prepend_block("scheduler")
        assert function.entry_label == "scheduler"
        assert [b.label for b in function.ordered_blocks()] == [
            "scheduler",
            "body",
        ]

    def test_fresh_label_avoids_collisions(self):
        function = IRFunction("f")
        function.add_block("exit")
        assert function.fresh_label("exit") != "exit"

    def test_fresh_registers_unique(self):
        function = IRFunction("f")
        a = function.fresh_register(DataType.f32)
        b = function.fresh_register(DataType.f32)
        assert a.name != b.name

    def test_entry_points_are_stable(self):
        function = IRFunction("f")
        function.add_block("a")
        function.add_block("b")
        first = function.add_entry_point("b")
        again = function.add_entry_point("b")
        assert first == again

    def test_registers_collects_defs_and_uses(self):
        function = IRFunction("f")
        block = function.add_block("entry")
        block.append(add(reg("x"), reg("y"), Constant(1, DataType.u32)))
        block.append(Exit())
        names = {r.name for r in function.registers()}
        assert names == {"x", "y"}

    def test_instruction_count(self, vecadd_scalar_ir):
        assert vecadd_scalar_ir.instruction_count() > 10


class TestVerifier:
    def _function_with(self, terminated=True):
        function = IRFunction("f")
        block = function.add_block("entry")
        block.append(
            UnaryOp(
                op="mov",
                dtype=DataType.u32,
                dst=reg("x"),
                a=Constant(0, DataType.u32),
            )
        )
        if terminated:
            block.append(Exit())
        return function

    def test_accepts_valid_function(self, vecadd_scalar_ir):
        verify_function(vecadd_scalar_ir)

    def test_rejects_unterminated_block(self):
        with pytest.raises(IRVerificationError):
            verify_function(self._function_with(terminated=False))

    def test_rejects_unknown_branch_target(self):
        function = IRFunction("f")
        function.add_block("entry").append(Branch("missing"))
        with pytest.raises(IRVerificationError):
            verify_function(function)

    def test_rejects_undefined_register_use(self):
        function = IRFunction("f")
        block = function.add_block("entry")
        block.append(add(reg("x"), reg("ghost"), reg("ghost")))
        block.append(Exit())
        with pytest.raises(IRVerificationError) as excinfo:
            verify_function(function)
        assert "ghost" in str(excinfo.value)

    def test_rejects_inconsistent_width(self):
        function = IRFunction("f", warp_size=4)
        block = function.add_block("entry")
        block.append(
            BinaryOp(
                op="add",
                dtype=DataType.u32,
                dst=reg("x", width=3),  # neither 1 nor 4
                a=Constant(0, DataType.u32),
                b=Constant(0, DataType.u32),
            )
        )
        block.append(Exit())
        with pytest.raises(IRVerificationError):
            verify_function(function)


class TestPrinter:
    def test_print_contains_blocks_and_header(self, vecadd_scalar_ir):
        text = print_function(vecadd_scalar_ir)
        assert "; function vecAdd.scalar" in text
        assert "entry:" in text
        assert "DONE:" in text

    def test_summarize(self, vecadd_scalar_ir):
        line = summarize(vecadd_scalar_ir)
        assert "vecAdd.scalar" in line
        assert "ws=1" in line
