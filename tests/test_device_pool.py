"""DevicePool: worker sharding, weighted fair queueing, quotas,
per-tenant statistics, and cross-tenant fault isolation."""

import re

import numpy as np
import pytest

from repro import DevicePool, KernelTrap, QuotaExceeded
from repro.errors import LaunchError
from repro.runtime.pool import WeightedFairQueue
from tests.conftest import VECADD_PTX

N = 8

#: Private module of the trapping tenant (registered after the pool's
#: workers warm, so its translation binds the armed fault site).
CHAOS_PTX = VECADD_PTX.replace("vecAdd", "chaosAdd")


@pytest.fixture(scope="module")
def pool():
    with DevicePool(workers=2, modules=[VECADD_PTX]) as pool:
        pool.ready(timeout=300.0)
        yield pool


def _session_buffers(session):
    a = session.upload(np.arange(N, dtype=np.float32))
    b = session.upload(np.arange(N, dtype=np.float32))
    c = session.malloc(4 * N)
    return a, b, c


class TestWeightedFairQueue:
    def test_weighted_interleaving_is_proportional(self):
        """Stride scheduling: weights 2:1 serve a,b,a,a,b,a,a,b,a."""
        queue = WeightedFairQueue()
        queue.add("a", weight=2.0)
        queue.add("b", weight=1.0)
        for index in range(6):
            queue.push("a", f"a{index}")
        for index in range(3):
            queue.push("b", f"b{index}")
        order = []
        while True:
            entry = queue.pop()
            if entry is None:
                break
            order.append(entry[0])
        assert order == ["a", "b", "a", "a", "b", "a", "a", "b", "a"]

    def test_latecomer_not_starved_and_banked_credit_dropped(self):
        """A tenant going idle (or joining late) re-enters at the
        current virtual clock: prompt service, but no banked
        catch-up burst — with banked credit (pass stuck at 0) the
        late tenant's first four pops would ALL be its own."""
        queue = WeightedFairQueue()
        queue.add("old", weight=1.0)
        queue.add("late", weight=1.0)
        for index in range(8):
            queue.push("old", index)
        for _ in range(4):
            assert queue.pop()[0] == "old"
        for index in range(4):
            queue.push("late", index)
        order = [queue.pop()[0] for _ in range(8)]
        assert order == [
            "late", "late", "old", "late", "old", "late", "old", "old",
        ]

    def test_duplicate_tenant_rejected(self):
        queue = WeightedFairQueue()
        queue.add("a")
        with pytest.raises(ValueError, match="already queued"):
            queue.add("a")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedFairQueue().add("a", weight=0)


class TestSessions:
    def test_tenants_spread_across_workers(self, pool):
        # The pool is module-scoped and other tests create sessions
        # too, so assert the placement *invariant* (every new tenant
        # lands on the least-populated worker) rather than a fixed
        # worker split that only holds when this test runs first.
        def populations():
            counts = {index: 0 for index in range(pool.workers)}
            for session in pool.sessions():
                counts[session.worker_index] += 1
            return counts

        existing = {s.tenant for s in pool.sessions()}
        before = populations()
        alice = pool.session("alice", weight=2.0)
        if "alice" not in existing:
            assert alice.worker_index == min(
                before, key=lambda index: (before[index], index)
            )
        between = populations()
        bob = pool.session("bob")
        if "bob" not in existing:
            assert bob.worker_index == min(
                between, key=lambda index: (between[index], index)
            )
        if not existing and len(set(before.values())) == 1:
            # a balanced pool spreads a fresh pair across workers
            assert alice.worker_index != bob.worker_index
        assert pool.session("alice") is alice

    def test_memory_roundtrip_and_launch(self, pool):
        session = pool.session("alice")
        a, b, c = _session_buffers(session)
        result = session.launch("vecAdd", 1, N, [a, b, c, N])
        assert result.statistics.instructions > 0
        assert np.allclose(
            session.read(c, np.float32, N), np.arange(N) * 2
        )
        session.write(b, np.ones(N, dtype=np.float32))
        session.launch("vecAdd", 1, N, [a, b, c, N])
        assert np.allclose(
            session.read(c, np.float32, N), np.arange(N) + 1
        )
        session.free(c)

    def test_per_tenant_fifo_and_statistics(self, pool):
        session = pool.session("fifo-tenant")
        a, b, c = _session_buffers(session)
        futures = [
            session.launch_async("vecAdd", 1, N, [a, b, c, N])
            for _ in range(4)
        ]
        session.synchronize(timeout=120)
        assert all(future.done() for future in futures)
        stats = session.statistics()
        assert stats.completed == 4
        assert stats.failed == 0
        assert stats.statistics.instructions > 0

    def test_cross_tenant_allocation_rejected(self, pool):
        alice = pool.session("alice")
        bob = pool.session("bob")
        theirs = bob.upload(np.ones(N, dtype=np.float32))
        mine = alice.malloc(4 * N)
        with pytest.raises(LaunchError, match="belongs to tenant"):
            alice.launch_async(
                "vecAdd", 1, N, [theirs, theirs, mine, N]
            )

    def test_pool_level_report_aggregates_tenants(self, pool):
        session = pool.session("alice")
        a, b, c = _session_buffers(session)
        session.launch("vecAdd", 1, N, [a, b, c, N])
        report = pool.report()
        assert "alice" in report
        assert "aggregate:" in report
        merged = pool.aggregate_statistics()
        assert merged.instructions >= (
            session.stats.statistics.instructions
        )
        assert len(pool.worker_reports()) == pool.workers

    def test_register_module_after_start(self, pool):
        kernels = pool.register_module(
            VECADD_PTX.replace("vecAdd", "lateAdd")
        )
        assert kernels == ["lateAdd"]
        session = pool.session("late-module")
        a, b, c = _session_buffers(session)
        session.launch("lateAdd", 1, N, [a, b, c, N])
        assert np.allclose(
            session.read(c, np.float32, N), np.arange(N) * 2
        )


class TestQuotas:
    def test_lifetime_launch_quota(self, pool):
        session = pool.session("quota-lifetime", max_launches=2)
        a, b, c = _session_buffers(session)
        for _ in range(2):
            session.launch("vecAdd", 1, N, [a, b, c, N])
        with pytest.raises(QuotaExceeded, match="lifetime"):
            session.launch("vecAdd", 1, N, [a, b, c, N])
        assert session.stats.rejected == 1

    def test_pending_quota(self, pool):
        session = pool.session("quota-pending", max_pending=1)
        a, b, c = _session_buffers(session)
        # Hold the one pending slot artificially.
        with session._condition:
            session._pending = 1
        try:
            with pytest.raises(QuotaExceeded, match="outstanding"):
                session.launch_async("vecAdd", 1, N, [a, b, c, N])
        finally:
            with session._condition:
                session._pending = 0
        session.launch("vecAdd", 1, N, [a, b, c, N])

    def test_quota_is_launch_error_subclass(self):
        assert issubclass(QuotaExceeded, LaunchError)


class TestFaultIsolation:
    def test_trapping_tenant_never_blocks_or_corrupts_others(self, pool):
        """The acceptance scenario: chaos tenant pinned to worker 0
        with an armed memory_fault; a same-worker healthy tenant and
        a cross-worker tenant keep launching correct results."""
        same = pool.session("healthy-same", worker=0)
        other = pool.session("healthy-other", worker=1)
        sa, sb, sc = _session_buffers(same)
        oa, ob, oc = _session_buffers(other)
        # Translate the healthy tenants' kernel before arming.
        same.launch("vecAdd", 1, N, [sa, sb, sc, N])
        other.launch("vecAdd", 1, N, [oa, ob, oc, N])

        chaos = pool.session("chaos", worker=0)
        chaos.register_module(CHAOS_PTX)
        chaos.inject_fault("memory_fault", probability=1.0, seed=11)
        ca, cb, cc = _session_buffers(chaos)
        try:
            future = chaos.launch_async(
                "chaosAdd", 1, N, [ca, cb, cc, N]
            )
            error = future.exception(timeout=120)
            assert isinstance(error, KernelTrap)
            # Structured payload survived the process boundary.
            assert error.info is not None
            assert error.info.kernel == "chaosAdd"
            assert error.statistics is not None
            assert error.remote_report
            assert "chaosAdd" in error.remote_report
            assert chaos.stats.traps >= 1
            assert chaos.stats.trap_reports

            # Sticky per-tenant: chaos fails fast until reset.
            with pytest.raises(LaunchError, match="failed state"):
                chaos.launch_async("chaosAdd", 1, N, [ca, cb, cc, N])

            # Same-worker tenant unaffected (worker auto-recovered).
            same.launch("vecAdd", 1, N, [sa, sb, sc, N])
            assert np.allclose(
                same.read(sc, np.float32, N), np.arange(N) * 2
            )
            # Cross-worker tenant unaffected.
            other.launch("vecAdd", 1, N, [oa, ob, oc, N])
            assert np.allclose(
                other.read(oc, np.float32, N), np.arange(N) * 2
            )
        finally:
            chaos.disarm_faults()
        chaos.reset()
        assert chaos.last_error is None
        chaos.launch("chaosAdd", 1, N, [ca, cb, cc, N])
        assert np.allclose(
            chaos.read(cc, np.float32, N), np.arange(N) * 2
        )


class TestWarmStart:
    def test_warm_pool_with_persistent_cache(self, tmp_path, monkeypatch):
        """REPRO_CACHE=1 + warm=True: a second pool against the same
        cache directory warm-starts from disk (hits reported by the
        worker devices)."""
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with DevicePool(workers=1, modules=[VECADD_PTX], warm=True) as pool:
            pool.ready(timeout=300.0)
            first_report = pool.worker_reports()[0]
        with DevicePool(workers=1, modules=[VECADD_PTX], warm=True) as pool:
            pool.ready(timeout=300.0)
            session = pool.session("warm")
            a, b, c = _session_buffers(session)
            session.launch("vecAdd", 1, N, [a, b, c, N])
            assert np.allclose(
                session.read(c, np.float32, N), np.arange(N) * 2
            )
            second_report = pool.worker_reports()[0]
        match = re.search(r"disk hits=(\d+)", second_report)
        assert match and int(match.group(1)) > 0, (
            first_report, second_report,
        )


class TestLifecycle:
    def test_shutdown_fails_queued_launches(self):
        pool = DevicePool(workers=1, modules=[VECADD_PTX])
        pool.ready(timeout=300.0)
        session = pool.session("doomed")
        a, b, c = _session_buffers(session)
        future = session.launch_async("vecAdd", 1, N, [a, b, c, N])
        pool.shutdown()
        error = future.exception(timeout=60)
        if error is not None:
            assert isinstance(error, LaunchError)
        with pytest.raises(LaunchError):
            session.launch_async("vecAdd", 1, N, [a, b, c, N])

    def test_dead_worker_raises_launch_error(self):
        pool = DevicePool(workers=1, modules=[VECADD_PTX])
        pool.ready(timeout=300.0)
        session = pool.session("orphan")
        a, b, c = _session_buffers(session)
        pool._workers[0].process.terminate()
        pool._workers[0].process.join(10)
        try:
            with pytest.raises(LaunchError, match="worker 0"):
                session.read(a, np.float32, N)
        finally:
            pool.shutdown()
