"""Workload suite tests: every registered application must verify its
device results against the NumPy host reference under every standard
configuration — the benchmark harness therefore doubles as a large
integration surface."""

import numpy as np
import pytest

from repro import baseline_config, static_tie_config, vectorized_config
from repro.workloads import (
    Category,
    all_workloads,
    get_workload,
    workload_names,
)

CONFIGS = [
    ("baseline", baseline_config()),
    ("vec4", vectorized_config(4)),
    ("static-tie", static_tie_config(4)),
]

#: Small scale keeps the full matrix fast while still exercising the
#: guard/divergence paths of every kernel.
SCALE = 0.25


class TestRegistry:
    def test_suite_size_matches_design(self):
        # ~30 applications plus the Table 1 microbenchmark
        assert len(workload_names()) >= 30

    def test_names_are_unique_and_sorted_access_works(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("not-a-workload")

    def test_every_category_represented(self):
        categories = {w.category for w in all_workloads()}
        assert Category.COMPUTE_UNIFORM in categories
        assert Category.MEMORY_BOUND in categories
        assert Category.BARRIER_HEAVY in categories
        assert Category.DIVERGENT in categories
        assert Category.ATOMIC in categories

    def test_paper_named_applications_present(self):
        names = set(workload_names())
        for required in (
            "BinomialOptions",
            "BlackScholes",
            "BoxFilter",
            "MersenneTwister",
            "Nbody",
            "ScalarProd",
            "SobolQRNG",
            "cp",
            "mri-q",
            "mri-fhd",
            "throughput",
        ):
            assert required in names

    def test_module_sources_parse(self):
        from repro.ptx import parse, validate_module

        for workload in all_workloads():
            validate_module(parse(workload.module_source()))


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=lambda w: w.name
)
@pytest.mark.parametrize("label,config", CONFIGS)
class TestSuiteCorrectness:
    def test_verifies_against_reference(self, workload, label, config):
        run = workload.run_on(config, scale=SCALE, check=True)
        assert run.correct
        assert run.checked
        statistics = run.statistics
        assert statistics.threads_launched > 0
        assert statistics.total_cycles > 0


class TestBehaviouralShape:
    """The category-level behaviours Figures 6-9 rely on."""

    def test_divergent_apps_yield_divergently(self):
        workload = get_workload("MersenneTwister")
        run = workload.run_on(vectorized_config(4), scale=SCALE)
        assert run.statistics.divergent_yields > 0

    def test_uniform_apps_do_not_diverge(self):
        workload = get_workload("BlackScholes")
        run = workload.run_on(vectorized_config(4), scale=SCALE)
        assert run.statistics.divergent_yields == 0

    def test_barrier_apps_yield_at_barriers(self):
        workload = get_workload("Reduction")
        run = workload.run_on(vectorized_config(4), scale=SCALE)
        assert run.statistics.barrier_yields > 0

    def test_compute_bound_app_speeds_up(self):
        workload = get_workload("cp")
        base = workload.run_on(baseline_config(), scale=SCALE)
        vec = workload.run_on(vectorized_config(4), scale=SCALE)
        assert base.elapsed_cycles / vec.elapsed_cycles > 2.0

    def test_divergent_app_slows_down(self):
        workload = get_workload("MersenneTwister")
        base = workload.run_on(baseline_config(), scale=SCALE)
        vec = workload.run_on(vectorized_config(4), scale=SCALE)
        assert base.elapsed_cycles / vec.elapsed_cycles < 1.0

    def test_static_formation_recovers_mri(self):
        workload = get_workload("mri-q")
        dynamic = workload.run_on(vectorized_config(4), scale=SCALE)
        static = workload.run_on(static_tie_config(4), scale=SCALE)
        assert static.elapsed_cycles < dynamic.elapsed_cycles

    def test_vote_workload_caps_warp_size(self):
        workload = get_workload("SimpleVoteIntrinsics")
        run = workload.run_on(vectorized_config(4), scale=1.0)
        assert max(run.statistics.warp_size_histogram) <= 2

    def test_kernel_dominated_app(self):
        workload = get_workload("Nbody")
        run = workload.run_on(vectorized_config(4), scale=SCALE)
        fractions = run.statistics.cycle_fractions()
        assert fractions["kernel"] > 0.9

    def test_throughput_flops_counted(self):
        workload = get_workload("throughput")
        run = workload.run_on(vectorized_config(4), scale=0.25)
        assert run.statistics.flops > 0
        assert run.statistics.gflops(3.4e9) > 50.0
